// E8 (paper Thm 4 engine): the zig-zag derandomization machinery, run for
// real and measured.
//
// Reingold's construction needs H = (d^16, d, 1/2); those constants are
// astronomically beyond any machine (DESIGN.md substitution record).
// What IS measurable, and is measured here:
//  * powering amplifies the gap exactly: lambda(G^k) = lambda(G)^k;
//  * the RVW zig-zag bound lambda(GzH) <= lG + lH + lH^2 holds with room;
//  * base-expander search reaches near-Ramanujan lambda at several (D,d);
//  * one full transform level (G z H)^k at laptop parameters: vertex
//    growth xD, degree preserved, connectivity preserved, measured lambda
//    trajectory, and eccentricity (diameter proxy) staying logarithmic-ish
//    while the graph grows by 16x per level.
// Index row: DESIGN.md §4 / EXPERIMENTS.md (E8) — expected shape lives there.
#include "bench_common.h"

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/spectral.h"
#include "reingold/transform.h"
#include "util/table.h"

int main() {
  using namespace uesr;
  using namespace uesr::reingold;
  bench::banner("E8 / Thm 4 — zig-zag derandomization engine",
                "Reingold's transform G_{i+1} = (G_i z H)^k, measured at "
                "laptop parameters");

  // --- powering: lambda(G^k) = lambda(G)^k.
  util::Table p({"graph", "lambda", "lambda^2", "measured lambda(G^2)",
                 "lambda^3", "measured lambda(G^3)"});
  // Non-bipartite graphs only: powering a bipartite graph disconnects it
  // (even walks stay on one side), so lambda would be undefined.
  for (const graph::Graph& g :
       {graph::petersen(), graph::prism(5), graph::complete(8)}) {
    double l = graph::lambda_exact(g);
    auto o = share(DenseRotationMap::from_graph(g));
    double l2 = graph::lambda_exact(
        DenseRotationMap::materialize(*power(o, 2)).to_graph());
    double l3 = graph::lambda_exact(
        DenseRotationMap::materialize(*power(o, 3)).to_graph());
    p.row().cell(graph::describe(g)).cell(l, 4).cell(l * l, 4).cell(l2, 4)
        .cell(l * l * l, 4).cell(l3, 4);
  }
  p.print(std::cout);

  // --- base expander search at increasing (D, d).
  util::Table e({"(D,d)", "found lambda", "ramanujan bound", "ratio"});
  struct P { std::uint64_t D; std::uint32_t d; };
  for (auto [D, d] : {P{16, 4}, P{64, 4}, P{64, 8}, P{256, 8}, P{256, 16}}) {
    ExpanderInfo h = find_expander(D, d, 0xabc0 + D, 12);
    e.row()
        .cell("(" + std::to_string(D) + "," + std::to_string(d) + ")")
        .cell(h.lambda, 4)
        .cell(ramanujan_bound(d), 4)
        .cell(h.lambda / ramanujan_bound(d), 3);
  }
  e.print(std::cout);
  std::cout << "\nrandom search sits within ~15% of the Ramanujan bound; "
               "Reingold's lambda<=1/2 needs d >= 16 — (256,16) reaches "
               "it, exactly as the theory sizes it\n\n";

  // --- zig-zag bound with a real expander H.
  {
    graph::Graph g = graph::random_connected_regular_switch(48, 16, 7);
    ExpanderInfo h = find_expander(16, 4, 0x123, 25);
    double lg = graph::lambda_power(g, 800);
    auto zz = zigzag(share(DenseRotationMap::from_graph(g)),
                     share(DenseRotationMap::materialize(h.rotation)));
    double lz = lambda_oracle(*zz, 800);
    std::cout << "zig-zag: lambda(G)=" << util::format_double(lg, 4)
              << " lambda(H)=" << util::format_double(h.lambda, 4)
              << " measured lambda(GzH)=" << util::format_double(lz, 4)
              << " <= RVW bound "
              << util::format_double(lg + h.lambda + h.lambda * h.lambda, 4)
              << "\n\n";
  }

  // --- the main transform ladder at (d=4, k=1, D=16).
  TransformParams params;
  ExpanderInfo h = find_expander(16, 4, 0xbeef, 30);
  params.h = share(DenseRotationMap::materialize(h.rotation));
  params.k = 1;
  util::Table lad({"level", "vertices", "degree", "lambda (measured)",
                   "eccentricity(0)", "connected"});
  auto g0 = share(pad_to_regular(graph::cycle(24), 16));
  auto ladder = transform_ladder(g0, params, 3);
  for (std::size_t lvl = 0; lvl < ladder.size(); ++lvl) {
    const auto& g = ladder[lvl];
    double lam = lambda_oracle(*g, lvl >= 3 ? 60 : 300, 5);
    lad.row()
        .cell(static_cast<std::uint64_t>(lvl))
        .cell(g->num_vertices())
        .cell(g->degree())
        .cell(lam, 4)
        .cell(static_cast<std::uint64_t>(oracle_eccentricity(*g, 0)))
        .cell(oracle_connected(*g, 0, g->num_vertices() - 1));
  }
  lad.print(std::cout);
  std::cout << "\nvertices x16 per level, degree constant, connectivity "
               "preserved, eccentricity growing only additively while the "
               "graph grows geometrically — the diameter-collapse "
               "mechanism behind log-space USTCON.  (k=1 cannot amplify "
               "the gap — amplification needs lambda(H) <= 1/2, next.)\n\n";

  // --- one FULL-STRENGTH level: d=16, k=2, D=256, lambda(H) < 1/2.
  // This is the actual gap-amplification step of Reingold's proof, run
  // with a base expander meeting his spectral requirement.  Level-2+
  // materialization is impossible (degree 65536), but level 1 is
  // measurable: gap(G1) = 1 - lambda(GzH)^2 must exceed gap(G0).
  {
    ExpanderInfo h16 = find_expander(256, 16, 0x9999, 10);
    auto g0 = share(pad_to_regular(graph::cycle(12), 256));
    double l0 = lambda_oracle(*g0, 4000, 11);
    auto zz = zigzag(g0, share(DenseRotationMap::materialize(h16.rotation)));
    double lzz = lambda_oracle(*zz, 600, 13);
    double l1 = lzz * lzz;  // exact powering identity lambda(G^2)=lambda^2
    std::cout << "full-strength level (d=16, k=2, D=256, lambda(H)="
              << util::format_double(h16.lambda, 3) << " <= 1/2):\n"
              << "  lambda(G0) = " << util::format_double(l0, 6)
              << "  gap " << util::format_double(1 - l0, 6) << "\n"
              << "  lambda(G0 z H) = " << util::format_double(lzz, 6)
              << " -> lambda(G1) = lambda(zz)^2 = "
              << util::format_double(l1, 6) << "  gap "
              << util::format_double(1 - l1, 6) << "\n"
              << "  gap amplification x"
              << util::format_double((1 - l1) / (1 - l0), 2)
              << " in one level — the engine of Theorem 4\n";
  }
  return 0;
}
