// E14 (lossy traffic engine): >= 1024 concurrent sessions over per-session
// lossy channels + adaptive ARQ, with links that flap AND drop in one
// replayable scenario.
//
// Shape expected: `unsound == 0` on EVERY row — the engine never emits a
// wrong certificate; budget exhaustion degrades sessions to `uncert`
// instead.  In the loss x window sweep, window = 1 is stop-and-wait pacing
// (one frame per RTT): its virtual time per delivered route towers over
// the pipelined windows, and the gap widens with loss because selective
// repeat resends only the frames that died while window = 1 serialises
// every recovery.  Window 8 vs 32 is nearly flat — the 16-frame payload
// caps the usable pipeline depth.  The churn table composes loss with
// epoch flaps at >= 1024 sessions: delivery dips, restarts appear, and
// soundness still holds on every row.
//
// Sessions fan out over the shared threads knob via
// baselines::lossy_traffic_experiment, whose cells are bit-identical for
// any --threads value (pinned by the lossy-traffic ThreadInvariance tests).
// Index row: DESIGN.md §4 / EXPERIMENTS.md (E14) — expected shape lives there.
#include "bench_common.h"

#include <vector>

#include "baselines/workload.h"
#include "graph/churn.h"
#include "graph/generators.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace uesr;
  const unsigned threads = bench::threads_knob(argc, argv);
  bench::banner(
      "E14 / lossy traffic engine — guaranteed delivery under composed "
      "loss, churn, and load",
      "concurrent route sessions over per-session lossy channels + "
      "adaptive selective-repeat ARQ: certificates stay sound under every "
      "composition; loss only ever degrades sessions to uncertified");
  bench::report_threads(threads);

  // --- Table 1: loss x window, static topology -----------------------------
  // window = 1 is the stop-and-wait baseline; the payload is 16 frames per
  // hop so the pipeline has something to fill.
  const graph::Graph g = graph::connected_gnp(16, 0.25, 41);
  const baselines::Workload w16 = baselines::all_pairs_workload(16);
  std::cout << "\n### loss x window sweep (gnp n=16, " << w16.sessions.size()
            << " sessions, 16 frames/hop, selective repeat)\n\n";
  util::Table t({"loss", "window", "ok", "cert", "uncert", "unsound",
                 "wire frames", "retx", "vtime/ok", "s"});
  for (double loss : {0.0, 0.05, 0.1, 0.25}) {
    for (std::uint32_t window : {1u, 8u, 32u}) {
      core::LossyTrafficConfig cfg;
      cfg.link.loss = loss;
      cfg.arq = core::ArqKind::kSelectiveRepeat;
      cfg.window.frames_per_message = 16;
      cfg.window.window = window;
      cfg.window.max_retries = 16;
      bench::Timer timer;
      const baselines::LossyTrafficCell cell =
          baselines::lossy_traffic_experiment(g, w16, cfg, /*seq_seed=*/131,
                                              threads);
      t.row()
          .cell(loss, 2)
          .cell(window)
          .cell(cell.delivered)
          .cell(cell.certified)
          .cell(cell.uncertified)
          .cell(cell.unsound)
          .cell(cell.wire_frames)
          .cell(cell.retransmits)
          .cell(cell.delivered > 0
                    ? static_cast<double>(cell.vtime_delivered) /
                          cell.delivered
                    : 0.0,
                1)
          .cell(timer.seconds(), 3);
    }
  }
  t.print(std::cout);
  std::cout << "\nwindow = 1 (stop-and-wait pacing) pays the most virtual "
               "time per delivered route at every loss rate; the pipelined "
               "windows close the gap and unsound == 0 everywhere\n";

  // --- Table 2: >= 1024 sessions, loss + churn composed --------------------
  // all-pairs on 34 nodes = 1122 concurrent sessions, links flapping one
  // epoch per 96 ticks AND dropping 10% of frames.
  graph::NodeChurnScenario sc(graph::connected_gnp(34, 0.16, 29),
                              /*p_leave=*/0.05, /*p_join=*/0.45, 107);
  const baselines::Workload w34 = baselines::all_pairs_workload(34);
  std::cout << "\n### composed regime: " << w34.sessions.size()
            << " sessions, loss=0.1, node churn (n=34, 24 epochs)\n\n";
  util::Table c({"arq", "ok", "cert", "uncert", "unsound", "restarts",
                 "wire frames", "retx", "vtime/ok", "clock", "s"});
  for (core::ArqKind arq :
       {core::ArqKind::kStopAndWait, core::ArqKind::kSelectiveRepeat}) {
    core::LossyTrafficConfig cfg;
    cfg.link.loss = 0.1;
    cfg.arq = arq;
    cfg.reliable.max_retries = 8;
    cfg.window.frames_per_message = 8;
    cfg.window.window = 8;
    cfg.window.max_retries = 8;
    bench::Timer timer;
    const baselines::LossyTrafficCell cell =
        baselines::lossy_traffic_experiment(sc, /*epoch_period=*/96,
                                            /*max_epochs=*/24, w34, cfg,
                                            /*seq_seed=*/131, threads);
    c.row()
        .cell(arq == core::ArqKind::kStopAndWait ? "stop-and-wait"
                                                 : "selective-repeat")
        .cell(cell.delivered)
        .cell(cell.certified)
        .cell(cell.uncertified)
        .cell(cell.unsound)
        .cell(cell.restarts)
        .cell(cell.wire_frames)
        .cell(cell.retransmits)
        .cell(cell.delivered > 0
                  ? static_cast<double>(cell.vtime_delivered) /
                        cell.delivered
                  : 0.0,
              1)
        .cell(cell.final_clock)
        .cell(timer.seconds(), 3);
  }
  c.print(std::cout);
  std::cout << "\nunsound == 0 on every row: across " << w34.sessions.size()
            << " concurrent sessions with links flapping and dropping at "
               "once, no delivered verdict and no failure certificate ever "
               "contradicts the ground-truth topology of its completion "
               "epoch\n";
  return 0;
}
