// E10: micro-benchmarks (google-benchmark) for the per-step costs that
// the paper's complexity claims are built from: symbol evaluation, walk
// steps, rotation-map products, degree reduction, and probe round trips.
// Index row: DESIGN.md §4 / EXPERIMENTS.md (E10) — expected shape lives there.
#include <benchmark/benchmark.h>

#include "core/count_nodes.h"
#include "core/multi_walk.h"
#include "core/route.h"
#include "explore/degree_reduce.h"
#include "explore/sequence.h"
#include "explore/universal.h"
#include "explore/walker.h"
#include "graph/catalog.h"
#include "graph/generators.h"
#include "reingold/products.h"
#include "reingold/rotation_map.h"

namespace {

using namespace uesr;

void BM_SymbolEvaluation(benchmark::State& state) {
  explore::RandomExplorationSequence seq(1, 1 << 20, 1024);
  std::uint64_t i = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(seq.symbol(i));
    i = i % (1 << 20) + 1;
  }
}
BENCHMARK(BM_SymbolEvaluation);

// Block symbol generation (ExplorationSequence::fill): the "after" shape of
// symbol access — one virtual call per block, counter hashes pipelined.
// Compare per-item time against BM_SymbolEvaluation.
void BM_SymbolFillBlock(benchmark::State& state) {
  explore::RandomExplorationSequence seq(1, 1 << 20, 1024);
  std::vector<explore::Symbol> block(
      static_cast<std::size_t>(state.range(0)));
  std::uint64_t i = 1;
  for (auto _ : state) {
    if (i + block.size() - 1 > seq.length()) i = 1;
    seq.fill(i, block.size(), block.data());
    i += block.size();
    benchmark::DoNotOptimize(block.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(block.size()));
}
BENCHMARK(BM_SymbolFillBlock)->Arg(64)->Arg(1024)->Arg(4096);

// Raw CSR rotation-map lookups, chained so each load depends on the last
// (the walk's true access pattern).  The 3-regular fast path is what every
// reduced-graph step pays.
void BM_FlatRotate(benchmark::State& state) {
  graph::Graph g = graph::random_connected_regular(
      static_cast<graph::NodeId>(state.range(0)), 3, 7);
  graph::HalfEdge he{0, 0};
  for (auto _ : state) {
    he = g.rotate3(he.node, he.port < 2 ? he.port + 1 : 0);
    benchmark::DoNotOptimize(he);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatRotate)->Arg(64)->Arg(16384);

// One full forward walk step, symbols consumed from fill() blocks exactly
// as the rewritten step loops (trace_walk, cover_time, RouteSession) do.
void BM_ForwardStep(benchmark::State& state) {
  graph::Graph g = graph::random_connected_regular(
      static_cast<graph::NodeId>(state.range(0)), 3, 7);
  explore::RandomExplorationSequence seq(2, 1 << 20, g.num_nodes());
  std::vector<explore::Symbol> block(explore::SymbolStream::kBlock);
  graph::HalfEdge d{0, 0};
  std::uint64_t i = 1;
  std::size_t pos = block.size();
  for (auto _ : state) {
    if (pos == block.size()) {
      if (i + block.size() - 1 > seq.length()) i = 1;
      seq.fill(i, block.size(), block.data());
      i += block.size();
      pos = 0;
    }
    d = explore::forward_step(g, d, block[pos++]);
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ForwardStep)->Arg(64)->Arg(1024)->Arg(16384);

void BM_RouteSessionStep(benchmark::State& state) {
  graph::Graph g = graph::random_connected_regular(256, 3, 9);
  explore::ReducedGraph red = explore::reduce_to_cubic(g);
  auto seq = explore::standard_ues(red.cubic.num_nodes());
  core::RouteSession session(red, *seq, 0, 255);
  for (auto _ : state) {
    if (session.finished())
      session = core::RouteSession(red, *seq, 0, 255);
    session.step();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouteSessionStep);

// Shared fixture for the multi-walk rows: one 2M-node cubic network whose
// rotation map (~72 MB packed) misses per-core cache the way a 10^6-node
// deployment does, so the SoA kernel's memory-level parallelism — not
// arithmetic — is what's measured.
const explore::ReducedGraph& multi_walk_net() {
  static const explore::ReducedGraph net = explore::reduce_to_cubic(
      graph::random_connected_regular(2'000'000, 3, 7));
  return net;
}

const explore::ExplorationSequence& multi_walk_seq() {
  static const auto seq =
      explore::standard_ues(multi_walk_net().cubic.num_nodes());
  return *seq;
}

// SoA block kernel: `lanes` concurrent walks stepped 64 slots per call
// (the engine's batch).  items/s = transmissions/s; compare against
// BM_SequentialWalkStep64's 64 scalar sessions for the E10 speedup row
// (acceptance: the 64-lane row is >= 2x the sequential baseline).
void BM_MultiWalkStep(benchmark::State& state) {
  const auto& net = multi_walk_net();
  const auto& seq = multi_walk_seq();
  const auto n = static_cast<graph::NodeId>(net.first_gadget.size());
  const auto lanes = static_cast<std::size_t>(state.range(0));
  core::MultiWalkArena arena(net, seq);
  std::vector<std::size_t> walks;
  std::uint64_t admitted = 0;
  auto fresh_pair = [&](graph::NodeId* s, graph::NodeId* t) {
    *s = static_cast<graph::NodeId>((admitted * 97 + 13) % n);
    *t = static_cast<graph::NodeId>((*s + n / 2 + 1 + admitted) % n);
    if (*t == *s) *t = (*s + 1) % n;
    ++admitted;
  };
  for (std::size_t i = 0; i < lanes; ++i) {
    graph::NodeId s, t;
    fresh_pair(&s, &t);
    walks.push_back(arena.admit(s, t));
  }
  for (auto _ : state) {
    arena.step_block(walks.data(), walks.size(), 64);
    // Recycle delivered walks so every iteration steps a full block
    // (expander hit times are ~n, well within a long bench run).
    for (std::size_t& w : walks)
      if (arena.finished(w)) {
        graph::NodeId s, t;
        fresh_pair(&s, &t);
        w = arena.admit(s, t);
      }
    benchmark::ClobberMemory();
  }
  std::uint64_t tx = 0;
  for (std::size_t w = 0; w < arena.size(); ++w) tx += arena.transmissions(w);
  state.counters["lanes"] = static_cast<double>(lanes);
  state.SetItemsProcessed(static_cast<std::int64_t>(tx));
}
BENCHMARK(BM_MultiWalkStep)->Arg(8)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

// The "before" shape: the same 64 walks as scalar RouteSessions, each
// granted 64 slots in turn — one dependent load chain at a time, no
// cross-walk overlap.
void BM_SequentialWalkStep64(benchmark::State& state) {
  const auto& net = multi_walk_net();
  const auto& seq = multi_walk_seq();
  const auto n = static_cast<graph::NodeId>(net.first_gadget.size());
  std::vector<core::RouteSession> sessions;
  std::uint64_t admitted = 0;
  auto fresh = [&]() {
    const auto s = static_cast<graph::NodeId>((admitted * 97 + 13) % n);
    auto t = static_cast<graph::NodeId>((s + n / 2 + 1 + admitted) % n);
    if (t == s) t = (s + 1) % n;
    ++admitted;
    return core::RouteSession(net, seq, s, t);
  };
  for (std::size_t i = 0; i < 64; ++i) sessions.push_back(fresh());
  std::uint64_t tx = 0;
  for (auto _ : state) {
    for (core::RouteSession& session : sessions) {
      if (session.finished()) session = fresh();
      std::uint64_t used = 0;
      std::uint64_t calls = 2 * 64 + 8;
      while (!session.finished() && used < 64 && calls-- > 0) {
        const std::uint64_t before = session.transmissions();
        session.step();
        used += session.transmissions() - before;
      }
      tx += used;
    }
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(tx));
}
BENCHMARK(BM_SequentialWalkStep64)->Unit(benchmark::kMicrosecond);

void BM_DegreeReduction(benchmark::State& state) {
  graph::Graph g = graph::gnp(static_cast<graph::NodeId>(state.range(0)),
                              8.0 / state.range(0), 3);
  for (auto _ : state) {
    auto r = explore::reduce_to_cubic(g);
    benchmark::DoNotOptimize(r.cubic.num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_DegreeReduction)->Arg(256)->Arg(2048)->Arg(16384);

void BM_RotationProductQuery(benchmark::State& state) {
  using namespace uesr::reingold;
  auto g = share(pad_to_regular(graph::cycle(64), 16));
  auto h = share(DenseRotationMap::from_graph(graph::cycle(16)));
  auto zz = power(zigzag(g, h), 2);
  std::uint64_t v = 0;
  std::uint32_t e = 0;
  for (auto _ : state) {
    Place p = zz->rotate({v % zz->num_vertices(), e % zz->degree()});
    benchmark::DoNotOptimize(p);
    v += 17;
    e += 3;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RotationProductQuery);

void BM_RetrieveProbe(benchmark::State& state) {
  graph::Graph g = graph::cycle(16);
  explore::ReducedGraph red = explore::reduce_to_cubic(g);
  auto seq = explore::standard_ues(red.cubic.num_nodes());
  std::uint64_t tx = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::retrieve(red, *seq, 0, static_cast<std::uint64_t>(state.range(0)),
                       tx));
  }
  state.SetItemsProcessed(state.iterations() * 2 * (state.range(0) + 1));
}
BENCHMARK(BM_RetrieveProbe)->Arg(16)->Arg(256)->Arg(4096);

void BM_CoverCheck(benchmark::State& state) {
  graph::Graph g = graph::random_connected_regular(
      static_cast<graph::NodeId>(state.range(0)), 3, 5);
  explore::RandomExplorationSequence seq(3, 64ULL * state.range(0) *
                                                state.range(0),
                                         g.num_nodes());
  for (auto _ : state) {
    benchmark::DoNotOptimize(explore::cover_time(g, {0, 0}, seq));
  }
}
BENCHMARK(BM_CoverCheck)->Arg(16)->Arg(64);

// Parallel verification harness (DESIGN.md §"Parallel verification
// harness").  Each benchmark carries a `threads` counter so BENCH_micro.json
// rows can be compared across thread counts next to the retained serial
// baselines above; the checked reports are bit-identical at every thread
// count — only the wall clock moves.

// covers_all_starts fanned over all 3n start half-edges of one cubic graph.
void BM_CoverCheckParallel(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  graph::Graph g = graph::random_connected_regular(64, 3, 5);
  explore::RandomExplorationSequence seq(3, 64ULL * 64 * 64, g.num_nodes());
  for (auto _ : state) {
    benchmark::DoNotOptimize(explore::covers_all_starts(g, seq, threads));
  }
  state.counters["threads"] = threads;
  state.SetItemsProcessed(state.iterations() * 3 * 64);  // walks
}
BENCHMARK(BM_CoverCheckParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Definition-3 exhaustive check, whole labelling space of the first n=6
// catalogue graph: 6^6 = 46656 labellings x 18 start edges, sharded by
// mixed-radix rank across workers.  The sequence covers every labelling
// (verified), so the sweep never early-exits and the measured work is the
// full space.
void BM_UniversalExhaustive(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  graph::Graph g = graph::connected_cubic_graphs(6, 1).front();
  explore::RandomExplorationSequence seq(0x5eed, 2048, 6);
  std::uint64_t walks = 0;
  for (auto _ : state) {
    auto rep = explore::check_universal_exhaustive(g, seq, threads);
    walks += rep.walks_checked;
    benchmark::DoNotOptimize(rep.universal);
  }
  state.counters["threads"] = threads;
  state.SetItemsProcessed(static_cast<std::int64_t>(walks));
}
BENCHMARK(BM_UniversalExhaustive)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The n=8 catalogue regime: a fixed 6^5-labelling shard (x 24 start edges)
// of the first 8-vertex cubic graph via check_universal_exhaustive_range —
// the same rank sharding that distributes the full 6^8 sweep across
// machines.
void BM_UniversalExhaustiveShard8(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  graph::Graph g = graph::connected_cubic_graphs(8, 1).front();
  explore::RandomExplorationSequence seq(0x5eed, 4096, 8);
  std::uint64_t walks = 0;
  for (auto _ : state) {
    auto rep = explore::check_universal_exhaustive_range(g, seq, 0, 7776,
                                                         threads);
    walks += rep.walks_checked;
    benchmark::DoNotOptimize(rep.universal);
  }
  state.counters["threads"] = threads;
  state.SetItemsProcessed(static_cast<std::int64_t>(walks));
}
BENCHMARK(BM_UniversalExhaustiveShard8)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
