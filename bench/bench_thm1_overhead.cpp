// E4 (Theorem 1, space): the header overhead and per-node working space
// are O(log n) bits in the namespace size n.
//
// Shape expected: bits grow by a constant (2 for the header: one per
// name field) per doubling of the namespace — a straight line against
// log2(n) — and stay minuscule (tens of bits) even at internet scale
// (n = 2^32, the paper's IPv4 example).
// Index row: DESIGN.md §4 / EXPERIMENTS.md (E4) — expected shape lives there.
#include "bench_common.h"

#include "explore/sequence.h"
#include "net/message.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace uesr;
  bench::banner("E4 / Thm 1 — O(log n) header and node space",
                "paper: message overhead and node memory are O(log n) "
                "bits for namespace size n (IPv4: n = 2^32)");

  util::Table t({"namespace n", "L_n (poly)", "route hdr bits",
                 "probe hdr bits", "node working bits"});
  std::vector<double> logs, bits;
  for (int k = 4; k <= 32; k += 4) {
    std::uint64_t n = 1ULL << k;
    // L_n for the pseudorandom family: ~24 n^2 log n, capped for display
    // at the value the router would use for a graph of that size.
    long double ln_approx = 24.0L * static_cast<long double>(n) * n * (k + 1);
    std::uint64_t ln = ln_approx > 1e18L ? static_cast<std::uint64_t>(1e18)
                                         : static_cast<std::uint64_t>(ln_approx);
    int route_bits = net::header_bits(net::Kind::kRoute, n, ln);
    int probe_bits = net::header_bits(net::Kind::kRetrieveNeighbor, n, ln);
    int node_bits = net::node_working_bits(n, ln);
    t.row().cell(std::string("2^") + std::to_string(k)).cell(ln)
        .cell(route_bits).cell(probe_bits).cell(node_bits);
    logs.push_back(k);
    bits.push_back(route_bits);
  }
  t.print(std::cout);
  auto fit = util::linear_fit(logs, bits);
  std::cout << "\nroute header bits ~= " << util::format_double(fit.slope, 2)
            << " * log2(n) + " << util::format_double(fit.intercept, 1)
            << " (r2=" << util::format_double(fit.r2, 4)
            << "): linear in log n, i.e. O(log n); at n=2^32 the whole "
               "header is under 200 bits\n";
  return 0;
}
