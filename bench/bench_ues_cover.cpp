// E7 (paper §2): cover behaviour of exploration sequences.
//
// Claims regenerated:
//  * a random ternary sequence of length O(n^2)-ish covers 3-regular
//    graphs w.h.p. [Feige '93, Lovász '96] — we measure the empirical
//    cover time across the cubic catalogue and random labellings;
//  * short certified-universal sequences exist for small n (Definition 3
//    made executable): the shipped certificate for n = 4 is re-verified
//    exhaustively here, labelings x start edges and all.
// Index row: DESIGN.md §4 / EXPERIMENTS.md (E7) — expected shape lives there.
#include "bench_common.h"

#include "explore/certified.h"
#include "explore/walker.h"
#include "graph/catalog.h"
#include "graph/generators.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace uesr;
  bench::banner("E7 / §2 — cover times and certified universality",
                "paper: random sequences of length O(n^2) cover; Reingold "
                "gives deterministic T_n (here: certified-by-enumeration "
                "stand-ins; see DESIGN.md)");

  // --- empirical cover time of the pseudorandom family on cubic graphs.
  util::Table t({"n (cubic)", "graphs", "walks", "mean cover steps",
                 "p95 cover", "max cover", "cover/n^2", "uncovered"});
  for (graph::NodeId n : {4u, 6u, 8u, 10u, 12u}) {
    auto cat = graph::connected_cubic_graphs(n, 1);
    explore::RandomExplorationSequence seq(0x5eed, 4096ULL * n * n, n);
    util::Samples cover;
    std::uint64_t uncovered = 0, walks = 0;
    util::Pcg32 rng(3);
    for (const auto& g : cat) {
      for (int lab = 0; lab < 3; ++lab) {
        graph::Graph labeled = g.randomly_relabeled(rng);
        for (graph::NodeId v = 0; v < labeled.num_nodes(); v += 3) {
          ++walks;
          auto ct = explore::cover_time(labeled, {v, 0}, seq);
          if (ct)
            cover.add(static_cast<double>(*ct));
          else
            ++uncovered;
        }
      }
    }
    t.row()
        .cell(n)
        .cell(cat.size())
        .cell(walks)
        .cell(cover.mean(), 1)
        .cell(cover.percentile(95), 1)
        .cell(cover.max(), 0)
        .cell(cover.mean() / (n * n), 2)
        .cell(uncovered);
  }
  t.print(std::cout);
  std::cout << "\ncover/n^2 stays a small constant: the O(n^2) cover claim "
               "for 3-regular graphs; no walk failed to cover\n";

  // --- certified universal sequence for n = 4, re-verified exhaustively.
  bench::Timer timer;
  explore::CertifiedUes c = explore::find_certified_ues(4, 2024);
  double sec = timer.seconds();
  std::cout << "\ncertified UES for n<=4: L = " << c.sequence->length()
            << ", corpus graphs = " << c.certificate.graphs_checked
            << ", labelings = " << c.certificate.labelings_checked
            << ", walks = " << c.certificate.walks_checked << ", level = "
            << (c.certificate.level == explore::CertLevel::kExhaustive
                    ? "EXHAUSTIVE"
                    : "adversarial")
            << " (" << util::format_double(sec, 2) << " s)\n"
            << "Definition 3 holds by enumeration for every connected "
               "cubic (multi)graph with <= 4 vertices, every port "
               "labelling, every start edge\n";
  return 0;
}
