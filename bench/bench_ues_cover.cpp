// E7 (paper §2): cover behaviour of exploration sequences.
//
// Claims regenerated:
//  * a random ternary sequence of length O(n^2)-ish covers 3-regular
//    graphs w.h.p. [Feige '93, Lovász '96] — we measure the empirical
//    cover time across the cubic catalogue and random labellings;
//  * short certified-universal sequences exist for small n (Definition 3
//    made executable): the shipped certificate for n = 4 is re-verified
//    exhaustively here, labelings x start edges and all.
//
// Walks fan out over the shared threads knob: each (graph, labelling,
// start) trial is independent, labelling j of graph i is drawn from
// Pcg32(counter_hash(kLabelSeed, i*kLabellings + j)) so any shard of the
// trial list is reproducible in isolation, and per-chunk Samples merge in
// chunk order — every data cell is bit-identical for any --threads value
// (only the wall-clock `s` column moves).
// Index row: DESIGN.md §4 / EXPERIMENTS.md (E7) — expected shape lives there.
#include "bench_common.h"

#include <vector>

#include "explore/certified.h"
#include "explore/walker.h"
#include "graph/catalog.h"
#include "graph/generators.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

constexpr std::uint64_t kLabelSeed = 3;
constexpr int kLabellings = 3;

}  // namespace

int main(int argc, char** argv) {
  using namespace uesr;
  const unsigned threads = bench::threads_knob(argc, argv);
  bench::banner("E7 / §2 — cover times and certified universality",
                "paper: random sequences of length O(n^2) cover; Reingold "
                "gives deterministic T_n (here: certified-by-enumeration "
                "stand-ins; see DESIGN.md)");
  bench::report_threads(threads);
  util::ThreadPool pool(threads);

  // --- empirical cover time of the pseudorandom family on cubic graphs.
  util::Table t({"n (cubic)", "graphs", "walks", "mean cover steps",
                 "p95 cover", "max cover", "cover/n^2", "uncovered", "s"});
  for (graph::NodeId n : {4u, 6u, 8u, 10u, 12u}) {
    auto cat = graph::connected_cubic_graphs(n, 1);
    explore::RandomExplorationSequence seq(0x5eed, 4096ULL * n * n, n);

    // Flattened trial list: one entry per (graph, labelling, start) walk.
    struct Trial {
      std::uint32_t graph;
      std::uint32_t lab;
      graph::NodeId start;
    };
    std::vector<Trial> trials;
    for (std::uint32_t gi = 0; gi < cat.size(); ++gi)
      for (std::uint32_t lab = 0; lab < kLabellings; ++lab)
        for (graph::NodeId v = 0; v < n; v += 3)
          trials.push_back({gi, lab, v});

    struct Part {
      util::Samples cover;
      std::uint64_t uncovered = 0;
      std::uint64_t walks = 0;
    };
    bench::Timer timer;
    Part merged = util::parallel_reduce<Part>(
        pool, trials.size(), util::default_chunk(trials.size(), pool.size()),
        Part{},
        [&](const util::ChunkRange& c) {
          Part part;
          explore::WalkScratch scratch;
          graph::Graph labeled;
          std::uint64_t have = UINT64_MAX;  // (graph, lab) the cache holds
          for (std::uint64_t i = c.begin; i < c.end; ++i) {
            const Trial& trial = trials[i];
            const std::uint64_t key =
                trial.graph * std::uint64_t{kLabellings} + trial.lab;
            if (key != have) {
              // The labelling is a pure function of its index, so chunk
              // boundaries (and thread count) cannot change which labelled
              // graph trial i walks.
              util::Pcg32 rng(util::counter_hash(kLabelSeed, key));
              labeled = cat[trial.graph].randomly_relabeled(rng);
              have = key;
            }
            ++part.walks;
            // Catalogue graphs are connected: the component of any start
            // is the whole graph.
            auto ct = explore::cover_time(labeled, {trial.start, 0}, seq,
                                          labeled.num_nodes(), scratch);
            if (ct)
              part.cover.add(static_cast<double>(*ct));
            else
              ++part.uncovered;
          }
          return part;
        },
        [](Part acc, Part part) {
          acc.cover.add_all(part.cover);
          acc.uncovered += part.uncovered;
          acc.walks += part.walks;
          return acc;
        });
    const double sec = timer.seconds();
    t.row()
        .cell(n)
        .cell(cat.size())
        .cell(merged.walks)
        .cell(merged.cover.mean(), 1)
        .cell(merged.cover.percentile(95), 1)
        .cell(merged.cover.max(), 0)
        .cell(merged.cover.mean() / (n * n), 2)
        .cell(merged.uncovered)
        .cell(sec, 3);
  }
  t.print(std::cout);
  std::cout << "\ncover/n^2 stays a small constant: the O(n^2) cover claim "
               "for 3-regular graphs; no walk failed to cover\n";

  // --- certified universal sequence for n = 4, re-verified exhaustively.
  bench::Timer timer;
  explore::CertifiedUes c = explore::find_certified_ues(4, 2024, 46656,
                                                        threads);
  double sec = timer.seconds();
  std::cout << "\ncertified UES for n<=4: L = " << c.sequence->length()
            << ", corpus graphs = " << c.certificate.graphs_checked
            << ", labelings = " << c.certificate.labelings_checked
            << ", walks = " << c.certificate.walks_checked << ", level = "
            << (c.certificate.level == explore::CertLevel::kExhaustive
                    ? "EXHAUSTIVE"
                    : "adversarial")
            << " (" << util::format_double(sec, 2) << " s, " << threads
            << " threads)\n"
            << "Definition 3 holds by enumeration for every connected "
               "cubic (multi)graph with <= 4 vertices, every port "
               "labelling, every start edge\n";
  return 0;
}
