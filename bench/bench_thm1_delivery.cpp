// E2 (Theorem 1, delivery): guaranteed delivery on arbitrary topologies
// and exact failure certification, vs the baselines.
//
// Shape expected: UES delivers on 100% of connected pairs on EVERY
// topology class (including the non-planar / 3D ones where geometric
// methods break) and returns certified failures exactly on the
// disconnected pairs.  Random walk with a TTL misses some pairs; flooding
// delivers everything but needs per-node state (model violation).
//
// Trials fan out over the shared threads knob: the pair list is drawn
// serially up front (same pairs as ever), each trial's random-walk
// baseline is seeded per trial index, and per-chunk counters merge in
// chunk order — every data cell is identical for any --threads value
// (only the wall-clock `s` column moves).
// Index row: DESIGN.md §4 / EXPERIMENTS.md (E2) — expected shape lives there.
#include "bench_common.h"

#include <cmath>
#include <memory>
#include <vector>

#include "baselines/flooding.h"
#include "baselines/random_walk.h"
#include "core/api.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/geometric.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace uesr;
  const unsigned threads = bench::threads_knob(argc, argv);
  bench::banner("E2 / Thm 1 — guaranteed delivery",
                "paper: the UES router delivers iff a path exists, on any "
                "static topology, with stateless nodes");
  bench::report_threads(threads);
  util::ThreadPool pool(threads);

  struct Net {
    std::string name;
    graph::Graph g;
  };
  std::vector<Net> nets;
  nets.push_back({"gnp(40,.08) multi-comp", graph::gnp(40, 0.08, 11)});
  nets.push_back({"udg2d(50,.18) sparse", graph::unit_disk_2d(50, 0.18, 7).graph});
  nets.push_back({"udg3d(50,.28) sparse", graph::unit_disk_3d(50, 0.28, 9).graph});
  nets.push_back({"cubic(40) non-planar", graph::random_connected_regular(40, 3, 5)});
  nets.push_back({"torus(6x6)", graph::torus(6, 6)});
  nets.push_back({"lollipop(8,24)", graph::lollipop(8, 24)});
  nets.push_back({"two islands", graph::from_edges(30, [] {
                    std::vector<std::pair<graph::NodeId, graph::NodeId>> e;
                    for (graph::NodeId v = 0; v + 1 < 15; ++v)
                      e.push_back({v, v + 1});
                    for (graph::NodeId v = 15; v + 1 < 30; ++v)
                      e.push_back({v, v + 1});
                    return e;
                  }())});

  util::Table t({"topology", "pairs", "connected", "ues ok", "ues certified-fail",
                 "rw(ttl) ok", "flood ok", "errors", "s"});
  const int kPairs = 60;
  for (auto& [name, g] : nets) {
    core::AdHocNetwork net(g);
    // TTL sized at ~10 n^1.5: plenty for fast-mixing graphs, tight for
    // slow ones — exposing the "sufficiently unlucky" failure mode of §1.2.
    auto ttl = static_cast<std::uint64_t>(
        10.0 * std::pow(static_cast<double>(g.num_nodes()), 1.5));
    // The pair list is drawn serially, exactly as the serial driver did.
    util::Pcg32 rng(123);
    std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs(kPairs);
    for (auto& [s, tgt] : pairs) {
      s = rng.next_below(g.num_nodes());
      tgt = rng.next_below(g.num_nodes());
    }

    struct Part {
      int connected = 0, ues_ok = 0, certified = 0, rw_ok = 0, fl_ok = 0,
          errors = 0;
    };
    bench::Timer timer;
    Part merged = util::parallel_reduce<Part>(
        pool, pairs.size(), util::default_chunk(pairs.size(), pool.size()),
        Part{},
        [&](const util::ChunkRange& c) {
          Part part;
          for (std::uint64_t i = c.begin; i < c.end; ++i) {
            const auto [s, tgt] = pairs[i];
            bool truth = graph::has_path(g, s, tgt);
            part.connected += truth;
            auto r = net.route(s, tgt);  // const, stateless: shared safely
            if (r.delivered != truth) ++part.errors;  // should never happen
            part.ues_ok += r.delivered;
            part.certified += (!truth && !r.delivered);
            // Baselines are stateful (per-route RNG stream): give trial i
            // its own instance seeded by the trial index so the outcome is
            // a pure function of (seed, i).
            baselines::RandomWalkRouter rw(g, ttl, util::counter_hash(77, i));
            part.rw_ok += rw.route(s, tgt).delivered;
            baselines::FloodingRouter fl(g);
            part.fl_ok += fl.route(s, tgt).delivered;
          }
          return part;
        },
        [](Part acc, Part p) {
          acc.connected += p.connected;
          acc.ues_ok += p.ues_ok;
          acc.certified += p.certified;
          acc.rw_ok += p.rw_ok;
          acc.fl_ok += p.fl_ok;
          acc.errors += p.errors;
          return acc;
        });
    t.row()
        .cell(name)
        .cell(kPairs)
        .cell(merged.connected)
        .cell(merged.ues_ok)
        .cell(merged.certified)
        .cell(merged.rw_ok)
        .cell(merged.fl_ok)
        .cell(merged.errors)
        .cell(timer.seconds(), 3);
  }
  t.print(std::cout);
  std::cout << "\nues ok == connected and errors == 0 on every row: "
               "delivery iff reachable, failures certified\n";
  return 0;
}
