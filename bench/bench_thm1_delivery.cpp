// E2 (Theorem 1, delivery): guaranteed delivery on arbitrary topologies
// and exact failure certification, vs the baselines.
//
// Shape expected: UES delivers on 100% of connected pairs on EVERY
// topology class (including the non-planar / 3D ones where geometric
// methods break) and returns certified failures exactly on the
// disconnected pairs.  Random walk with a TTL misses some pairs; flooding
// delivers everything but needs per-node state (model violation).
// Index row: DESIGN.md §4 / EXPERIMENTS.md (E2) — expected shape lives there.
#include "bench_common.h"

#include <cmath>
#include <memory>
#include <vector>

#include "baselines/flooding.h"
#include "baselines/random_walk.h"
#include "core/api.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/geometric.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace uesr;
  bench::banner("E2 / Thm 1 — guaranteed delivery",
                "paper: the UES router delivers iff a path exists, on any "
                "static topology, with stateless nodes");

  struct Net {
    std::string name;
    graph::Graph g;
  };
  std::vector<Net> nets;
  nets.push_back({"gnp(40,.08) multi-comp", graph::gnp(40, 0.08, 11)});
  nets.push_back({"udg2d(50,.18) sparse", graph::unit_disk_2d(50, 0.18, 7).graph});
  nets.push_back({"udg3d(50,.28) sparse", graph::unit_disk_3d(50, 0.28, 9).graph});
  nets.push_back({"cubic(40) non-planar", graph::random_connected_regular(40, 3, 5)});
  nets.push_back({"torus(6x6)", graph::torus(6, 6)});
  nets.push_back({"lollipop(8,24)", graph::lollipop(8, 24)});
  nets.push_back({"two islands", graph::from_edges(30, [] {
                    std::vector<std::pair<graph::NodeId, graph::NodeId>> e;
                    for (graph::NodeId v = 0; v + 1 < 15; ++v)
                      e.push_back({v, v + 1});
                    for (graph::NodeId v = 15; v + 1 < 30; ++v)
                      e.push_back({v, v + 1});
                    return e;
                  }())});

  util::Table t({"topology", "pairs", "connected", "ues ok", "ues certified-fail",
                 "rw(ttl) ok", "flood ok", "errors"});
  const int kPairs = 60;
  for (auto& [name, g] : nets) {
    core::AdHocNetwork net(g);
    // TTL sized at ~10 n^1.5: plenty for fast-mixing graphs, tight for
    // slow ones — exposing the "sufficiently unlucky" failure mode of §1.2.
    auto ttl = static_cast<std::uint64_t>(
        10.0 * std::pow(static_cast<double>(g.num_nodes()), 1.5));
    baselines::RandomWalkRouter rw(g, ttl, 77);
    baselines::FloodingRouter fl(g);
    util::Pcg32 rng(123);
    int connected = 0, ues_ok = 0, certified = 0, rw_ok = 0, fl_ok = 0,
        errors = 0;
    for (int i = 0; i < kPairs; ++i) {
      graph::NodeId s = rng.next_below(g.num_nodes());
      graph::NodeId tgt = rng.next_below(g.num_nodes());
      bool truth = graph::has_path(g, s, tgt);
      connected += truth;
      auto r = net.route(s, tgt);
      if (r.delivered != truth) ++errors;  // should never happen
      ues_ok += r.delivered;
      certified += (!truth && !r.delivered);
      rw_ok += rw.route(s, tgt).delivered;
      fl_ok += fl.route(s, tgt).delivered;
    }
    t.row()
        .cell(name)
        .cell(kPairs)
        .cell(connected)
        .cell(ues_ok)
        .cell(certified)
        .cell(rw_ok)
        .cell(fl_ok)
        .cell(errors);
  }
  t.print(std::cout);
  std::cout << "\nues ok == connected and errors == 0 on every row: "
               "delivery iff reachable, failures certified\n";
  return 0;
}
