// Shared helpers for the experiment harness (bench/).
//
// Every binary regenerates one experiment row-set from DESIGN.md §4 and
// prints a markdown table; EXPERIMENTS.md records the expected shapes.
// Keep runtimes modest: these run in CI-style loops.
//
// Threading: every driver shares one knob — `--threads=N` on the command
// line, else the UESR_THREADS environment variable, else hardware
// concurrency.  `--threads=1` reproduces the serial behaviour exactly:
// the drivers fan trials out with util::parallel_reduce, whose merged
// results are bit-identical for any thread count (see util/parallel.h),
// so the knob only changes wall-clock (the `s`/`ms` timing columns),
// never a data cell.
#pragma once

#include <chrono>
#include <iostream>
#include <string>

#include "util/cli.h"
#include "util/parallel.h"

namespace uesr::bench {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "\n## " << id << "\n" << claim << "\n\n";
}

/// The shared threads knob: --threads=N beats UESR_THREADS beats hardware
/// concurrency.  Call once at the top of main and pass the result to the
/// driver's ThreadPool / verification calls.
inline unsigned threads_knob(int argc, const char* const* argv) {
  util::Cli cli(argc, argv);
  // Clamp before the unsigned conversion: a negative or absurd value must
  // not wrap into a billions-of-threads spawn request.
  std::int64_t v = cli.get_int("threads", 0);
  if (v < 0 || v > static_cast<std::int64_t>(util::kMaxThreads)) v = 0;
  return util::resolve_threads(static_cast<unsigned>(v));
}

/// One line under the banner recording how the run was parallelized, so
/// saved transcripts are self-describing.
inline void report_threads(unsigned threads) {
  std::cout << "threads: " << threads
            << "  (override with --threads=N or UESR_THREADS; results are "
               "thread-count invariant)\n";
}

}  // namespace uesr::bench
