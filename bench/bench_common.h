// Shared helpers for the experiment harness (bench/).
//
// Every binary regenerates one experiment row-set from DESIGN.md §4 and
// prints a markdown table; EXPERIMENTS.md records the expected shapes.
// Keep runtimes modest: these run in CI-style loops.
#pragma once

#include <chrono>
#include <iostream>
#include <string>

namespace uesr::bench {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "\n## " << id << "\n" << claim << "\n\n";
}

}  // namespace uesr::bench
