// E6 (paper §4): CountNodes learns |Cs| exactly, in poly(|Cs|) messages,
// without prior knowledge of anything.
//
// Shape expected: counts match BFS ground truth on every instance; the
// message bill grows like a (steep) polynomial — the L^3-ish cost of the
// closure scan — and the doubling stops at the first bound whose walk
// achieves neighbourhood closure.  Faithful mode (every hop sent) is run
// on the small rows and must match fast mode bit for bit.
//
// Rows fan out over the shared threads knob (one census per row, all
// independent); row results merge in row order, so every data cell and
// the fitted exponent are identical for any --threads value.  The per-row
// `ms` column is wall clock and moves with the knob — concurrent rows
// share cores, so at --threads>1 it reads high per row even as the whole
// table finishes sooner.
// Index row: DESIGN.md §4 / EXPERIMENTS.md (E6) — expected shape lives there.
#include "bench_common.h"

#include <vector>

#include "core/count_nodes.h"
#include "explore/degree_reduce.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace uesr;
  const unsigned threads = bench::threads_knob(argc, argv);
  bench::banner("E6 / §4 — CountNodes census",
                "paper: the size of Cs is computable in time poly(|Cs|) "
                "with O(log n) space and no prior knowledge");
  bench::report_threads(threads);
  util::ThreadPool pool(threads);

  auto family = [](std::uint64_t seed) {
    return core::default_sequence_family(seed);
  };

  struct Row {
    std::string name;
    graph::Graph g;
    graph::NodeId s;
  };
  std::vector<Row> rows;
  rows.push_back({"path(2)", graph::path(2), 0});
  rows.push_back({"cycle(3)", graph::cycle(3), 0});
  rows.push_back({"star(3)", graph::star(3), 0});
  rows.push_back({"k4", graph::k4(), 0});
  rows.push_back({"cycle(6)", graph::cycle(6), 0});
  rows.push_back({"petersen", graph::petersen(), 0});
  rows.push_back({"grid(4x4)", graph::grid(4, 4), 0});
  rows.push_back({"gnp(24,.12)", graph::connected_gnp(24, 0.12, 5), 0});
  rows.push_back({"gnp(40,.08)-comp", graph::gnp(40, 0.08, 9), 0});

  struct RowResult {
    std::size_t truth = 0;
    core::CountResult fast;
    std::string same = "-";
    double ms = 0.0;
  };
  std::vector<RowResult> results(rows.size());
  // One census per row; rows are independent, so fan them out whole (the
  // per-row ms stays a wall-clock measurement of that row's census).
  util::parallel_for(pool, rows.size(), 1, [&](const util::ChunkRange& c) {
    for (std::uint64_t i = c.begin; i < c.end; ++i) {
      auto& [name, g, s] = rows[i];
      RowResult& out = results[i];
      explore::ReducedGraph red = explore::reduce_to_cubic(g);
      bench::Timer timer;
      out.fast = core::count_nodes(red, s, family(17), core::CountMode::kFast);
      out.ms = timer.seconds() * 1e3;
      if (red.cubic.num_nodes() <= 12) {
        auto faithful =
            core::count_nodes(red, s, family(17), core::CountMode::kFaithful);
        out.same = (faithful.transmissions == out.fast.transmissions &&
                    faithful.gadget_count == out.fast.gadget_count &&
                    faithful.probes == out.fast.probes)
                       ? "yes"
                       : "NO";
      }
      out.truth = graph::component_of(g, s).size();
    }
  });

  util::Table t({"graph", "|Cs| truth", "counted", "|Cs'|", "epochs",
                 "probes", "transmissions", "faithful==fast", "ms"});
  std::vector<double> xs, ys;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RowResult& r = results[i];
    t.row()
        .cell(rows[i].name)
        .cell(r.truth)
        .cell(r.fast.original_count)
        .cell(r.fast.gadget_count)
        .cell(static_cast<int>(r.fast.epochs))
        .cell(r.fast.probes)
        .cell(r.fast.transmissions)
        .cell(r.same)
        .cell(r.ms, 1);
    xs.push_back(static_cast<double>(r.fast.gadget_count));
    ys.push_back(static_cast<double>(r.fast.transmissions));
  }
  t.print(std::cout);
  auto fit = util::loglog_fit(xs, ys);
  std::cout << "\nmessage bill ~ |Cs'|^" << util::format_double(fit.slope, 2)
            << " (r2=" << util::format_double(fit.r2, 3)
            << "): polynomial, dominated by the closure scan (the paper's "
               "O(L^2) probes x O(L) hops); every count exact\n";
  return 0;
}
