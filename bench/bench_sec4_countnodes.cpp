// E6 (paper §4): CountNodes learns |Cs| exactly, in poly(|Cs|) messages,
// without prior knowledge of anything.
//
// Shape expected: counts match BFS ground truth on every instance; the
// message bill grows like a (steep) polynomial — the L^3-ish cost of the
// closure scan — and the doubling stops at the first bound whose walk
// achieves neighbourhood closure.  Faithful mode (every hop sent) is run
// on the small rows and must match fast mode bit for bit.
// Index row: DESIGN.md §4 / EXPERIMENTS.md (E6) — expected shape lives there.
#include "bench_common.h"

#include "core/count_nodes.h"
#include "explore/degree_reduce.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace uesr;
  bench::banner("E6 / §4 — CountNodes census",
                "paper: the size of Cs is computable in time poly(|Cs|) "
                "with O(log n) space and no prior knowledge");

  auto family = [](std::uint64_t seed) {
    return core::default_sequence_family(seed);
  };

  struct Row {
    std::string name;
    graph::Graph g;
    graph::NodeId s;
  };
  std::vector<Row> rows;
  rows.push_back({"path(2)", graph::path(2), 0});
  rows.push_back({"cycle(3)", graph::cycle(3), 0});
  rows.push_back({"star(3)", graph::star(3), 0});
  rows.push_back({"k4", graph::k4(), 0});
  rows.push_back({"cycle(6)", graph::cycle(6), 0});
  rows.push_back({"petersen", graph::petersen(), 0});
  rows.push_back({"grid(4x4)", graph::grid(4, 4), 0});
  rows.push_back({"gnp(24,.12)", graph::connected_gnp(24, 0.12, 5), 0});
  rows.push_back({"gnp(40,.08)-comp", graph::gnp(40, 0.08, 9), 0});

  util::Table t({"graph", "|Cs| truth", "counted", "|Cs'|", "epochs",
                 "probes", "transmissions", "faithful==fast", "ms"});
  std::vector<double> xs, ys;
  for (auto& [name, g, s] : rows) {
    explore::ReducedGraph red = explore::reduce_to_cubic(g);
    bench::Timer timer;
    auto fast = core::count_nodes(red, s, family(17), core::CountMode::kFast);
    double ms = timer.seconds() * 1e3;
    std::string same = "-";
    if (red.cubic.num_nodes() <= 12) {
      auto faithful =
          core::count_nodes(red, s, family(17), core::CountMode::kFaithful);
      same = (faithful.transmissions == fast.transmissions &&
              faithful.gadget_count == fast.gadget_count &&
              faithful.probes == fast.probes)
                 ? "yes"
                 : "NO";
    }
    std::size_t truth = graph::component_of(g, s).size();
    t.row()
        .cell(name)
        .cell(truth)
        .cell(fast.original_count)
        .cell(fast.gadget_count)
        .cell(static_cast<int>(fast.epochs))
        .cell(fast.probes)
        .cell(fast.transmissions)
        .cell(same)
        .cell(ms, 1);
    xs.push_back(static_cast<double>(fast.gadget_count));
    ys.push_back(static_cast<double>(fast.transmissions));
  }
  t.print(std::cout);
  auto fit = util::loglog_fit(xs, ys);
  std::cout << "\nmessage bill ~ |Cs'|^" << util::format_double(fit.slope, 2)
            << " (r2=" << util::format_double(fit.r2, 3)
            << "): polynomial, dominated by the closure scan (the paper's "
               "O(L^2) probes x O(L) hops); every count exact\n";
  return 0;
}
