// E5 (Corollary 2): interleaving a fast probabilistic router with the
// guaranteed walker costs only a constant factor over the probabilistic
// router alone, while adding guaranteed termination.
//
// Shape expected: on graphs where the random walk is fast (cliques,
// expanders), hybrid mean time ~ 2x the random walk mean (the interleave
// factor) and far below the pure UES walk; on unreachable targets the
// hybrid still terminates, with a certificate — which the random walk
// alone can never produce.
// Index row: DESIGN.md §4 / EXPERIMENTS.md (E5) — expected shape lives there.
#include "bench_common.h"

#include "baselines/random_walk.h"
#include "core/api.h"
#include "core/hybrid.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace uesr;
  bench::banner("E5 / Cor 2 — hybrid combiner",
                "paper: probabilistic expected time O(T(n)) + guaranteed "
                "termination, by 1:1 interleave");

  struct Net {
    std::string name;
    graph::Graph g;
  };
  std::vector<Net> nets;
  nets.push_back({"complete(24)", graph::complete(24)});
  nets.push_back({"cubic-expander(40)",
                  graph::random_connected_regular(40, 3, 3)});
  nets.push_back({"torus(8x8)", graph::torus(8, 8)});
  nets.push_back({"lollipop(10,30)", graph::lollipop(10, 30)});

  util::Table t({"topology", "trials", "rw mean tx", "ues mean tx",
                 "hybrid mean tx", "hybrid/rw", "prob wins", "guar wins"});
  const int kTrials = 25;
  for (auto& [name, g] : nets) {
    explore::ReducedGraph red = explore::reduce_to_cubic(g);
    auto seq = explore::standard_ues(red.cubic.num_nodes());
    util::Pcg32 rng(9);
    util::Samples rw_tx, ues_tx, hy_tx;
    int prob_wins = 0, guar_wins = 0;
    for (int i = 0; i < kTrials; ++i) {
      graph::NodeId s = rng.next_below(g.num_nodes());
      graph::NodeId tgt = rng.next_below(g.num_nodes());
      if (s == tgt) tgt = (tgt + 1) % g.num_nodes();
      // Pure random walk (unbounded; these graphs are connected).
      baselines::RandomWalkSession rw(g, s, tgt, 0, 1000 + i);
      while (!rw.delivered()) rw.step();
      rw_tx.add(static_cast<double>(rw.transmissions()));
      // Pure UES (to delivery instant).
      core::RouteSession ues(red, *seq, s, tgt);
      while (!ues.target_reached() && !ues.finished()) ues.step();
      ues_tx.add(static_cast<double>(ues.transmissions()));
      // Hybrid.
      baselines::RandomWalkSession prob(g, s, tgt, 0, 2000 + i);
      core::RouteSession guar(red, *seq, s, tgt);
      auto h = core::route_hybrid(prob, guar);
      hy_tx.add(static_cast<double>(h.total_transmissions));
      prob_wins += h.winner == core::HybridWinner::kProbabilistic;
      guar_wins += h.winner == core::HybridWinner::kGuaranteed;
    }
    t.row()
        .cell(name)
        .cell(kTrials)
        .cell(rw_tx.mean(), 0)
        .cell(ues_tx.mean(), 0)
        .cell(hy_tx.mean(), 0)
        .cell(hy_tx.mean() / rw_tx.mean(), 2)
        .cell(prob_wins)
        .cell(guar_wins);
  }
  t.print(std::cout);

  // Termination guarantee on an unreachable target.
  graph::Graph split = graph::from_edges(12, {{0, 1}, {1, 2}, {2, 3},
                                              {4, 5}, {5, 6}});
  explore::ReducedGraph red = explore::reduce_to_cubic(split);
  auto seq = explore::standard_ues(red.cubic.num_nodes());
  baselines::RandomWalkSession prob(split, 0, 5, 50000, 3);
  core::RouteSession guar(red, *seq, 0, 5);
  auto h = core::route_hybrid(prob, guar);
  std::cout << "\nunreachable target: hybrid terminated after "
            << h.total_transmissions << " transmissions with certificate="
            << (h.certified_unreachable ? "yes" : "no")
            << " (a pure random walk never terminates here)\n"
            << "\nhybrid/rw stays a small constant where the walk is fast "
               "(the 1:1 interleave is the factor ~2 the corollary "
               "predicts) and the guarantee costs nothing asymptotically\n";
  return 0;
}
