// E15 (fault injection): certificate soundness under the full chaos stack
// — loss + corruption + node crash/recovery windows, swept over crash rate
// x corruption rate with every verdict audited against ground truth.
//
// Shape expected: the `unsound` column is 0 in EVERY cell — faults convert
// verdicts into `uncert` outcomes (budgets die against crashed nodes and
// corrupted frames), never into wrong certificates (DESIGN.md §2.12).
// Delivery falls and frames/retransmits rise monotonically-ish along both
// axes; `corrupted` and `crashdrop` account where the wire losses went.
// The second table sweeps the same chaos grid on a split graph, where the
// cert column is the cross-component pairs whose walks still complete
// through the chaos.
//
// Trials fan out over the shared threads knob via
// baselines::chaos_experiment, whose cells are bit-identical for any
// --threads value (pinned by the chaos ThreadInvariance test).
// Index row: DESIGN.md §4 / EXPERIMENTS.md (E15) — expected shape lives there.
#include "bench_common.h"

#include <vector>

#include "baselines/chaos.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "util/table.h"

namespace {

uesr::graph::Graph two_component_gnp(uesr::graph::NodeId half, double p,
                                     std::uint64_t seed) {
  using namespace uesr::graph;
  const Graph a = connected_gnp(half, p, seed);
  const Graph b = connected_gnp(half, p, seed + 1);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (const Graph* g : {&a, &b}) {
    const NodeId base = g == &b ? half : 0;
    for (NodeId v = 0; v < g->num_nodes(); ++v)
      for (Port q = 0; q < g->degree(v); ++q) {
        const HalfEdge far = g->rotate(v, q);
        if (far.node > v || (far.node == v && far.port >= q))
          edges.emplace_back(base + v, base + far.node);
      }
  }
  return from_edges(2 * half, edges);
}

uesr::baselines::ChaosParams cell_params(double crash_rate, double corrupt) {
  uesr::baselines::ChaosParams params;
  params.loss = 0.05;
  params.dup = 0.01;
  params.corrupt = corrupt;
  params.reliable.max_retries = 12;
  params.chaos.crash_rate = crash_rate;
  params.chaos.horizon = 1 << 12;
  params.chaos.slot = 64;
  return params;
}

void sweep(const uesr::graph::Graph& g, int pairs, unsigned threads) {
  using namespace uesr;
  const std::vector<double> kCrash = {0.0, 0.02, 0.05, 0.1};
  const std::vector<double> kCorrupt = {0.0, 0.05, 0.15, 0.3};
  util::Table t({"crash", "corrupt", "pairs", "ok", "cert", "uncert",
                 "unsound", "frames", "corrupted", "crashdrop", "retx", "s"});
  for (double crash_rate : kCrash)
    for (double corrupt : kCorrupt) {
      bench::Timer timer;
      const baselines::ChaosCell cell = baselines::chaos_experiment(
          g, pairs, cell_params(crash_rate, corrupt), /*seed=*/151, threads);
      t.row()
          .cell(crash_rate, 2)
          .cell(corrupt, 2)
          .cell(cell.pairs)
          .cell(cell.delivered)
          .cell(cell.certified)
          .cell(cell.uncertified)
          .cell(cell.unsound)
          .cell(cell.frames)
          .cell(cell.corrupted)
          .cell(cell.crash_drops)
          .cell(cell.retransmits)
          .cell(timer.seconds(), 3);
    }
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uesr;
  const unsigned threads = bench::threads_knob(argc, argv);
  bench::banner("E15 / fault injection — certificate soundness under chaos",
                "seeded crash windows, corruption bursts, loss and "
                "duplication at once: every completed walk still carries an "
                "exact verdict — chaos makes certificates rarer, never "
                "wrong");
  bench::report_threads(threads);

  const int kPairs = 40;

  std::cout << "\n### gnp n=24 (connected): crash rate x corruption rate\n\n";
  sweep(graph::connected_gnp(24, 0.18, 41), kPairs, threads);

  std::cout << "\n### 2x gnp n=12 (split): crash rate x corruption rate\n\n";
  sweep(two_component_gnp(12, 0.3, 43), kPairs, threads);

  std::cout << "\nunsound == 0 in every cell: no crash schedule or "
               "corruption level produced a verdict contradicting the "
               "ground-truth component map — the fault layer degrades "
               "liveness, never soundness\n";
  return 0;
}
