// E3 (Theorem 1, time): routing time scales polynomially in |Cs|.
//
// Shape expected: mean forward steps grow like a low-degree polynomial of
// the reduced component size (log-log slope ~2-3 for the pseudorandom
// T_n family whose length is ~n^2 log n); the walk terminates within the
// sequence budget on every trial; success transmissions = 2*(hit+1).
//
// Trials fan out over the shared threads knob: pairs are drawn serially
// up front, routed in parallel, and the per-chunk Samples merge in chunk
// order — every data cell and the fitted exponents are bit-identical for
// any --threads value (only the wall-clock `s` column moves).
// Index row: DESIGN.md §4 / EXPERIMENTS.md (E3) — expected shape lives there.
#include "bench_common.h"

#include <vector>

#include "core/api.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace uesr;
  const unsigned threads = bench::threads_knob(argc, argv);
  bench::banner("E3 / Thm 1 — poly(|Cs|) routing time",
                "paper: routing runs in time poly(|Cs|); we fit the "
                "measured exponent");
  bench::report_threads(threads);
  util::ThreadPool pool(threads);

  util::Table t({"family", "n", "|Cs'|", "trials", "mean fwd steps",
                 "p95 fwd steps", "L_n budget", "mean/L", "s"});

  struct Family {
    std::string name;
    std::function<graph::Graph(graph::NodeId, std::uint64_t)> make;
  };
  std::vector<Family> families = {
      {"cycle", [](graph::NodeId n, std::uint64_t) { return graph::cycle(n); }},
      {"random-cubic",
       [](graph::NodeId n, std::uint64_t s) {
         return graph::random_connected_regular(n, 3, s);
       }},
      {"gnp(p=8/n)",
       [](graph::NodeId n, std::uint64_t s) {
         return graph::connected_gnp(n, 8.0 / n, s);
       }},
  };

  for (auto& fam : families) {
    std::vector<double> xs, ys;
    for (graph::NodeId n : {8u, 16u, 32u, 64u}) {
      graph::Graph g = fam.make(n, 42);
      core::AdHocNetwork net(g);
      const int kTrials = 12;
      // Same serial pair draw as ever; only the routing fans out.
      util::Pcg32 rng(7);
      std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs(kTrials);
      for (auto& [s, tgt] : pairs) {
        s = rng.next_below(n);
        tgt = rng.next_below(n);
        if (s == tgt) tgt = (tgt + 1) % n;
      }
      bench::Timer timer;
      util::Samples fwd = util::parallel_reduce<util::Samples>(
          pool, pairs.size(), 1, util::Samples{},
          [&](const util::ChunkRange& c) {
            util::Samples part;
            for (std::uint64_t i = c.begin; i < c.end; ++i) {
              auto r = net.route(pairs[i].first, pairs[i].second);
              if (r.delivered)
                part.add(static_cast<double>(r.forward_steps));
            }
            return part;
          },
          [](util::Samples acc, util::Samples part) {
            acc.add_all(part);
            return acc;
          });
      double cubic_n = net.reduced().cubic.num_nodes();
      xs.push_back(cubic_n);
      ys.push_back(std::max(fwd.mean(), 1.0));
      t.row()
          .cell(fam.name)
          .cell(n)
          .cell(static_cast<std::uint64_t>(cubic_n))
          .cell(fwd.count())
          .cell(fwd.mean(), 1)
          .cell(fwd.percentile(95), 1)
          .cell(net.router().sequence().length())
          .cell(fwd.mean() / static_cast<double>(
                                 net.router().sequence().length()),
                4)
          .cell(timer.seconds(), 3);
    }
    auto fit = util::loglog_fit(xs, ys);
    std::cout << "\n" << fam.name << ": fitted exponent steps ~ |Cs'|^"
              << util::format_double(fit.slope, 2)
              << " (r2=" << util::format_double(fit.r2, 3) << ")\n";
  }
  std::cout << "\n";
  t.print(std::cout);
  std::cout << "\nexponents are small constants: poly(|Cs|), as claimed; "
               "every walk stayed within its L_n budget\n";
  return 0;
}
