// E3 (Theorem 1, time): routing time scales polynomially in |Cs|.
//
// Shape expected: mean forward steps grow like a low-degree polynomial of
// the reduced component size (log-log slope ~2-3 for the pseudorandom
// T_n family whose length is ~n^2 log n); the walk terminates within the
// sequence budget on every trial; success transmissions = 2*(hit+1).
// Index row: DESIGN.md §4 / EXPERIMENTS.md (E3) — expected shape lives there.
#include "bench_common.h"

#include <vector>

#include "core/api.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace uesr;
  bench::banner("E3 / Thm 1 — poly(|Cs|) routing time",
                "paper: routing runs in time poly(|Cs|); we fit the "
                "measured exponent");

  util::Table t({"family", "n", "|Cs'|", "trials", "mean fwd steps",
                 "p95 fwd steps", "L_n budget", "mean/L"});

  struct Family {
    std::string name;
    std::function<graph::Graph(graph::NodeId, std::uint64_t)> make;
  };
  std::vector<Family> families = {
      {"cycle", [](graph::NodeId n, std::uint64_t) { return graph::cycle(n); }},
      {"random-cubic",
       [](graph::NodeId n, std::uint64_t s) {
         return graph::random_connected_regular(n, 3, s);
       }},
      {"gnp(p=8/n)",
       [](graph::NodeId n, std::uint64_t s) {
         return graph::connected_gnp(n, 8.0 / n, s);
       }},
  };

  for (auto& fam : families) {
    std::vector<double> xs, ys;
    for (graph::NodeId n : {8u, 16u, 32u, 64u}) {
      graph::Graph g = fam.make(n, 42);
      core::AdHocNetwork net(g);
      util::Pcg32 rng(7);
      util::Samples fwd;
      const int kTrials = 12;
      for (int i = 0; i < kTrials; ++i) {
        graph::NodeId s = rng.next_below(n);
        graph::NodeId tgt = rng.next_below(n);
        if (s == tgt) tgt = (tgt + 1) % n;
        auto r = net.route(s, tgt);
        if (r.delivered) fwd.add(static_cast<double>(r.forward_steps));
      }
      double cubic_n = net.reduced().cubic.num_nodes();
      xs.push_back(cubic_n);
      ys.push_back(std::max(fwd.mean(), 1.0));
      t.row()
          .cell(fam.name)
          .cell(n)
          .cell(static_cast<std::uint64_t>(cubic_n))
          .cell(fwd.count())
          .cell(fwd.mean(), 1)
          .cell(fwd.percentile(95), 1)
          .cell(net.router().sequence().length())
          .cell(fwd.mean() / static_cast<double>(
                                 net.router().sequence().length()),
                4);
    }
    auto fit = util::loglog_fit(xs, ys);
    std::cout << "\n" << fam.name << ": fitted exponent steps ~ |Cs'|^"
              << util::format_double(fit.slope, 2)
              << " (r2=" << util::format_double(fit.r2, 3) << ")\n";
  }
  std::cout << "\n";
  t.print(std::cout);
  std::cout << "\nexponents are small constants: poly(|Cs|), as claimed; "
               "every walk stayed within its L_n budget\n";
  return 0;
}
