// E12 (traffic engine): many simultaneous route sessions over one shared
// topology — the first experiment where "heavy traffic" is a measured
// axis, not a metaphor.
//
// Shape expected: on static connected rows every session ends in a
// delivery and certificates are exactly the cross-component pairs; the
// all-pairs row multiplexes >= 1024 concurrent sessions through one
// engine; on the churn-overlaid rows every session still terminates with
// a delivery or an epoch-exact certificate while all sessions share ONE
// schedule (unlike E11, which replays the schedule per attempt).  p50/p99
// completion transmissions and latency summarize the per-session cost
// distribution; `routes/s` and `s` are the only machine-dependent
// columns.
//
// The closing open-loop row is the million-scale regime: >= 1M
// cluster-local sessions with Poisson arrivals AND departures streamed
// through the sharded engine's SoA arena fast path on a >= 10^6-node
// clustered topology.
//
// Sessions fan out over the shared threads knob inside
// core::TrafficEngine; every data cell is bit-identical for any --threads
// and --shards split (pinned by the ThreadInvariance and ShardInvariance
// suites).
// Index row: DESIGN.md §4 / EXPERIMENTS.md (E12) — expected shape lives there.
#include "bench_common.h"

#include <memory>
#include <string>
#include <vector>

#include "baselines/workload.h"
#include "graph/churn.h"
#include "graph/generators.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace uesr;
  const unsigned threads = bench::threads_knob(argc, argv);
  bench::banner("E12 / traffic engine — concurrent session throughput",
                "ROADMAP regime: N simultaneous route/broadcast/hybrid "
                "sessions on one shared transmission clock, each completing "
                "with its exact per-session certificate");
  bench::report_threads(threads);

  util::Table t({"workload", "topology", "sessions", "ok", "cert", "exh",
                 "dep", "p50 tx", "p99 tx", "restarts", "routes/s", "s"});
  const std::uint64_t kSeqSeed = 0x5eed0001;

  auto add_row = [&](const std::string& topology, const std::string& name,
                     const baselines::TrafficCell& cell, double seconds) {
    t.row()
        .cell(name)
        .cell(topology)
        .cell(cell.sessions)
        .cell(cell.delivered)
        .cell(cell.certified)
        .cell(cell.exhausted)
        .cell(cell.departed)
        .cell(cell.p50_tx, 0)
        .cell(cell.p99_tx, 0)
        .cell(cell.restarts)
        .cell(seconds > 0 ? cell.sessions / seconds : 0.0, 0)
        .cell(seconds, 3);
  };

  // --- static rows -------------------------------------------------------
  struct StaticRow {
    std::string topology;
    graph::Graph g;
    baselines::Workload w;
  };
  std::vector<StaticRow> rows;
  rows.push_back({"connected-gnp(48)", graph::connected_gnp(48, 0.12, 19),
                  baselines::poisson_workload(48, 256, 2.0, 101)});
  rows.push_back({"grid(8x8)", graph::grid(8, 8),
                  baselines::hotspot_workload(64, 256, 0, 2.0, 103)});
  // The N >= 1024 acceptance row: every ordered pair at tick 0.
  rows.push_back({"connected-gnp(34)", graph::connected_gnp(34, 0.18, 23),
                  baselines::all_pairs_workload(34)});
  // Smaller mesh for the mixed row: its broadcasts walk the full T_n of
  // the reduced graph, which grows ~n'^2 log n'.
  rows.push_back({"torus(5x5)", graph::torus(5, 5),
                  baselines::mixed_workload(25, 192, 1.5, 4096, 107)});
  for (const StaticRow& row : rows) {
    bench::Timer timer;
    const baselines::TrafficCell cell =
        baselines::traffic_experiment(row.g, row.w, kSeqSeed, threads);
    add_row(row.topology, row.w.name, cell, timer.seconds());
  }

  // --- churn-overlaid rows (one shared schedule for ALL sessions) --------
  struct DynamicRow {
    std::unique_ptr<graph::Scenario> scenario;
    baselines::Workload w;
  };
  std::vector<DynamicRow> dyn;
  dyn.push_back({std::make_unique<graph::NodeChurnScenario>(
                     graph::connected_gnp(32, 0.2, 29), /*p_leave=*/0.08,
                     /*p_join=*/0.5, 109),
                 baselines::poisson_workload(32, 128, 3.0, 113)});
  dyn.push_back({std::make_unique<graph::LinkFlapScenario>(
                     graph::connected_gnp(36, 0.14, 31),
                     /*flaps_per_epoch=*/3, 127),
                 baselines::hotspot_workload(36, 128, 0, 3.0, 131)});
  const std::uint64_t kPeriod = 64;
  const std::uint64_t kMaxEpochs = 48;
  for (const DynamicRow& row : dyn) {
    bench::Timer timer;
    const baselines::TrafficCell cell = baselines::traffic_experiment(
        *row.scenario, kPeriod, kMaxEpochs, row.w, kSeqSeed, threads);
    add_row(row.scenario->name(), row.w.name, cell, timer.seconds());
  }

  // --- million-scale open-loop row (the PR 9 acceptance artifact) --------
  // >= 1M cluster-local sessions streamed through the sharded engine's
  // arena fast path on a >= 10^6-node clustered topology.  Arrivals AND
  // departures are open-loop (Poisson); the row is bit-identical for any
  // threads/shards split (pinned by the ShardInvariance suite).
  {
    const graph::NodeId kClusterSize = 8;
    const graph::NodeId kClusters = 131072;  // 8 * 131072 = 1,048,576 nodes
    const graph::Graph big = graph::disjoint_copies(
        graph::connected_gnp(kClusterSize, 0.45, 211), kClusters);
    baselines::OpenLoopWorkload::Config cfg;
    cfg.cluster_size = kClusterSize;
    cfg.clusters = kClusters;
    cfg.sessions = 1'048'576;
    cfg.mean_interarrival = 0.002;  // ~all admitted within ~2.1k slots
    cfg.mean_lifetime = 2048.0;     // patient, but a tail departs
    cfg.seed = 977;
    bench::Timer timer;
    const baselines::TrafficCell cell = baselines::open_loop_traffic_experiment(
        big, cfg, kSeqSeed, threads, /*shards=*/4 * threads);
    add_row("clusters(8x131072)", baselines::OpenLoopWorkload(cfg).name(),
            cell, timer.seconds());
  }

  t.print(std::cout);
  std::cout << "\nok + cert + exh + dep == sessions on every row (each "
               "session ends with its exact verdict or an open-loop "
               "departure); the all-pairs row multiplexes >= 1024 concurrent "
               "sessions and the open-loop row streams >= 1M sessions over a "
               ">= 10^6-node clustered topology; restarts appear only on the "
               "churn-overlaid rows, whose shared schedule is the regime "
               "E11's per-attempt replays cannot express\n";
  return 0;
}
