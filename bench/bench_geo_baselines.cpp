// E9 (paper intro, refs [2,5,9]): position-based routing works in planar
// 2D but has no guarantee in 3D; UES routing is topology-oblivious.
//
// Shape expected:
//  * 2D dense UDG: greedy ~always delivers; stretch small.
//  * 2D sparse UDG: greedy stalls in voids; GPSR face recovery on the
//    Gabriel planarization repairs it to ~100%.
//  * 3D sparse UDG: greedy stalls and NOTHING position-based repairs it
//    (no planarization exists) — while UES stays at 100% everywhere, at
//    the price of longer (poly) walks.
// Index row: DESIGN.md §4 / EXPERIMENTS.md (E9) — expected shape lives there.
#include "bench_common.h"

#include "baselines/geo.h"
#include "core/api.h"
#include "graph/algorithms.h"
#include "graph/geometric.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace uesr;
  bench::banner("E9 / intro — geometric baselines vs UES",
                "face routing guarantees exist only in planar 2D [5,9]; "
                "in 3D no local position-based guarantee exists [2]; the "
                "UES router does not care");

  util::Table t({"world", "pairs", "greedy ok", "gpsr ok", "ues ok",
                 "greedy mean hops", "ues mean tx"});
  const int kPairs = 40;

  auto run2d = [&](const std::string& name, graph::NodeId n, double radius,
                   std::uint64_t seed) {
    auto world = graph::connected_unit_disk_2d(n, radius, seed);
    auto planar = graph::gabriel_subgraph(world);
    core::AdHocNetwork net(world.graph);
    util::Pcg32 rng(77);
    int gok = 0, pok = 0, uok = 0;
    util::Samples ghops, utx;
    for (int i = 0; i < kPairs; ++i) {
      graph::NodeId s = rng.next_below(n), d = rng.next_below(n);
      if (s == d) d = (d + 1) % n;
      auto gr = baselines::greedy_route_2d(world, s, d);
      auto pr = baselines::gpsr_route(planar, s, d);
      auto ur = net.route(s, d);
      gok += gr.delivered;
      pok += pr.delivered;
      uok += ur.delivered;
      if (gr.delivered) ghops.add(static_cast<double>(gr.transmissions));
      utx.add(static_cast<double>(ur.total_transmissions));
    }
    t.row().cell(name).cell(kPairs).cell(gok).cell(pok).cell(uok)
        .cell(ghops.count() ? ghops.mean() : 0.0, 1).cell(utx.mean(), 0);
  };

  auto run3d = [&](const std::string& name, graph::NodeId n, double radius,
                   std::uint64_t seed) {
    auto world = graph::connected_unit_disk_3d(n, radius, seed);
    core::AdHocNetwork net(world.graph);
    util::Pcg32 rng(78);
    int gok = 0, uok = 0;
    util::Samples ghops, utx;
    for (int i = 0; i < kPairs; ++i) {
      graph::NodeId s = rng.next_below(n), d = rng.next_below(n);
      if (s == d) d = (d + 1) % n;
      auto gr = baselines::greedy_route_3d(world, s, d);
      auto ur = net.route(s, d);
      gok += gr.delivered;
      uok += ur.delivered;
      if (gr.delivered) ghops.add(static_cast<double>(gr.transmissions));
      utx.add(static_cast<double>(ur.total_transmissions));
    }
    t.row().cell(name).cell(kPairs).cell(gok).cell("n/a").cell(uok)
        .cell(ghops.count() ? ghops.mean() : 0.0, 1).cell(utx.mean(), 0);
  };

  run2d("2D dense (n=60,r=.30)", 60, 0.30, 1);
  run2d("2D sparse (n=60,r=.19)", 60, 0.19, 2);
  run2d("2D very sparse (n=80,r=.16)", 80, 0.16, 3);
  run3d("3D dense (n=60,r=.45)", 60, 0.45, 4);
  run3d("3D sparse (n=60,r=.32)", 60, 0.32, 5);
  run3d("3D very sparse (n=80,r=.28)", 80, 0.28, 6);

  t.print(std::cout);
  std::cout << "\ncrossover: greedy degrades as density falls; gpsr "
               "repairs 2D to full delivery but has no 3D column at all "
               "([2]: impossible locally); ues delivers "
               "everywhere, paying walk length for the guarantee\n";
  return 0;
}
