// E1 (paper Fig. 1): degree reduction to 3-regular graphs.
//
// Claims regenerated:
//  * output is always exactly 3-regular;
//  * |V'| = sum_v max(deg v, 3) <= 2|E| + 3|V| (linear; "at most squaring"
//    in the paper's worst-case phrasing);
//  * connectivity structure is preserved.
// Index row: DESIGN.md §4 / EXPERIMENTS.md (E1) — expected shape lives there.
#include "bench_common.h"

#include <functional>
#include <vector>

#include "explore/degree_reduce.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/geometric.h"
#include "util/table.h"

int main() {
  using namespace uesr;
  bench::banner("E1 / Fig.1 — degree reduction",
                "paper: every vertex of degree d becomes a cycle of "
                "max(d,3) degree-3 gadgets; blowup is linear (at most "
                "quadratic in the worst-case phrasing)");

  struct Row {
    std::string name;
    graph::Graph g;
  };
  std::vector<Row> rows;
  rows.push_back({"path(100)", graph::path(100)});
  rows.push_back({"cycle(500)", graph::cycle(500)});
  rows.push_back({"star(999)", graph::star(999)});
  rows.push_back({"grid(30x30)", graph::grid(30, 30)});
  rows.push_back({"torus(20x20)", graph::torus(20, 20)});
  rows.push_back({"hypercube(10)", graph::hypercube(10)});
  rows.push_back({"complete(64)", graph::complete(64)});
  rows.push_back({"gnp(400,.02)", graph::gnp(400, 0.02, 1)});
  rows.push_back({"gnp(2000,.004)", graph::gnp(2000, 0.004, 2)});
  rows.push_back({"rand-tree(3000)", graph::random_tree(3000, 3)});
  rows.push_back({"3reg(5000)", graph::random_regular(5000, 3, 4)});
  rows.push_back({"udg2d(800,.05)", graph::unit_disk_2d(800, 0.05, 5).graph});
  rows.push_back({"lollipop(40,160)", graph::lollipop(40, 160)});

  util::Table t({"graph", "|V|", "|E|", "|V'|", "3-regular", "bound 2E+3V",
                 "blowup x", "components ok", "ms"});
  for (auto& [name, g] : rows) {
    bench::Timer timer;
    explore::ReducedGraph r = explore::reduce_to_cubic(g);
    double ms = timer.seconds() * 1e3;
    std::size_t bound = 2 * g.num_edges() + 3 * g.num_nodes();
    bool comp_ok = true;
    auto orig = graph::connected_components(g);
    auto red = graph::connected_components(r.cubic);
    for (graph::NodeId u = 0; u < g.num_nodes() && comp_ok; ++u)
      for (graph::NodeId v = u + 1; v < g.num_nodes(); ++v)
        if ((orig[u] == orig[v]) !=
            (red[r.entry_gadget(u)] == red[r.entry_gadget(v)])) {
          comp_ok = false;
          break;
        }
    t.row()
        .cell(name)
        .cell(g.num_nodes())
        .cell(g.num_edges())
        .cell(r.cubic.num_nodes())
        .cell(r.cubic.is_regular(3))
        .cell(bound)
        .cell(static_cast<double>(r.cubic.num_nodes()) /
                  static_cast<double>(g.num_nodes()),
              2)
        .cell(comp_ok)
        .cell(ms, 2);
  }
  t.print(std::cout);
  std::cout << "\nall rows 3-regular, |V'| <= 2|E|+3|V|, components "
               "preserved; blowup is ~avg-degree, far below squaring\n";
  return 0;
}
