// E13 (asynchronous lossy links): what survives when frames are lost —
// UES-over-stop-and-wait vs flooding vs Haas–Halpern–Li gossip.
//
// Shape expected: on the connected graph, flooding degrades gracefully
// (its redundancy is loss armour — delivery stays high as loss grows) and
// gossip sits between flooding and the single walker in both delivery and
// cost; UES keeps `err == 0` on EVERY row — a delivered verdict or a
// failure certificate is never wrong under loss — but trades delivery for
// `uncert` outcomes as loss grows, because a hop that spends its retry
// budget ends the session with no verdict (DESIGN.md §2.10).  On the
// two-component graph the cert column is exactly the cross-component
// pairs that complete their walk.  The second table sweeps the retry
// budget at fixed loss: UES delivery cliffs when the budget drops below
// what the loss rate demands, and recovers to ~100% with headroom.
//
// Trials fan out over the shared threads knob via
// baselines::lossy_experiment, whose cells are bit-identical for any
// --threads value (pinned by the lossy ThreadInvariance tests).
// Index row: DESIGN.md §4 / EXPERIMENTS.md (E13) — expected shape lives there.
#include "bench_common.h"

#include <vector>

#include "baselines/lossy.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "util/table.h"

namespace {

// Two gnp components in one namespace: cross-component pairs exercise the
// failure certificate under loss.
uesr::graph::Graph two_component_gnp(uesr::graph::NodeId half, double p,
                                     std::uint64_t seed) {
  using namespace uesr::graph;
  const Graph a = connected_gnp(half, p, seed);
  const Graph b = connected_gnp(half, p, seed + 1);
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (const Graph* g : {&a, &b}) {
    const NodeId base = g == &b ? half : 0;
    for (NodeId v = 0; v < g->num_nodes(); ++v)
      for (Port q = 0; q < g->degree(v); ++q) {
        const HalfEdge far = g->rotate(v, q);
        if (far.node > v || (far.node == v && far.port >= q))
          edges.emplace_back(base + v, base + far.node);
      }
  }
  return from_edges(2 * half, edges);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace uesr;
  const unsigned threads = bench::threads_knob(argc, argv);
  bench::banner("E13 / lossy links — delivery and certification under loss",
                "frames lost, duplicated, delayed: flooding degrades "
                "gracefully, gossip sits between, and UES over stop-and-wait "
                "keeps sound certificates — paying with acks, retries, and "
                "uncertified-after-budget outcomes");
  bench::report_threads(threads);

  const int kPairs = 40;
  const std::vector<double> kLoss = {0.0, 0.01, 0.05, 0.1, 0.25};

  struct Row {
    const char* name;
    graph::Graph g;
  };
  std::vector<Row> graphs;
  graphs.push_back({"gnp n=24 (connected)", graph::connected_gnp(24, 0.18, 41)});
  graphs.push_back({"2x gnp n=12 (split)", two_component_gnp(12, 0.3, 43)});

  for (const Row& row : graphs) {
    std::cout << "\n### " << row.name << "\n\n";
    util::Table t({"loss", "pairs", "ues ok", "ues cert", "ues uncert",
                   "ues err", "ues frames", "flood ok", "flood tx",
                   "gossip ok", "gossip tx", "s"});
    for (double loss : kLoss) {
      baselines::LossyParams params;
      params.loss = loss;
      params.dup = 0.01;
      params.gossip_p = 0.65;
      bench::Timer timer;
      const baselines::LossyCell cell =
          baselines::lossy_experiment(row.g, kPairs, params, /*seed=*/131,
                                      threads);
      t.row()
          .cell(loss, 2)
          .cell(cell.pairs)
          .cell(cell.ues_delivered)
          .cell(cell.ues_certified)
          .cell(cell.ues_uncertified)
          .cell(cell.ues_errors)
          .cell(cell.ues_frames)
          .cell(cell.flood_delivered)
          .cell(cell.flood_transmissions)
          .cell(cell.gossip_delivered)
          .cell(cell.gossip_transmissions)
          .cell(timer.seconds(), 3);
    }
    t.print(std::cout);
  }

  std::cout << "\n### retry-budget cliff (gnp n=24, loss=0.1)\n\n";
  util::Table b({"max_retries", "pairs", "ues ok", "ues cert", "ues uncert",
                 "ues err", "ues frames", "s"});
  for (std::uint32_t budget : {0u, 1u, 2u, 4u, 8u, 16u}) {
    baselines::LossyParams params;
    params.loss = 0.1;
    params.reliable.max_retries = budget;
    bench::Timer timer;
    const baselines::LossyCell cell = baselines::lossy_experiment(
        graphs[0].g, kPairs, params, /*seed=*/131, threads);
    b.row()
        .cell(budget)
        .cell(cell.pairs)
        .cell(cell.ues_delivered)
        .cell(cell.ues_certified)
        .cell(cell.ues_uncertified)
        .cell(cell.ues_errors)
        .cell(cell.ues_frames)
        .cell(timer.seconds(), 3);
  }
  b.print(std::cout);

  std::cout << "\nues err == 0 on every row: no verdict ever contradicts "
               "ground truth — loss converts verdicts into uncertified "
               "outcomes, never into wrong certificates\n";
  return 0;
}
