// Ablations of the design choices DESIGN.md calls out.
//
// A1  sequence-length coefficient: L = c * n'^2 for the routing sequence.
//     Too short and the failure "certificate" becomes UNSOUND (a missed
//     connected target); the default (~24 n'^2 log n') buys soundness
//     headroom.  Measured: delivery on known-connected pairs vs c.
//
// A2  symbol alphabet: Definition 3 uses offsets {0,1,2} on 3-regular
//     graphs.  Sub-alphabets lose coverage: {0} bounces on one edge
//     forever; {1} can orbit; {1,2} never reverses an edge (it cannot
//     bounce), which strands it on some labelled trees.  Measured: cover
//     rate over the cubic catalogue under random labellings.
//
// A3  the static-network assumption: reversibility is what brings the
//     status home; if the topology changes mid-walk, the backtrack can
//     derail.  Measured: fraction of walks whose backward replay fails to
//     reach the origin after a random double-edge-swap halfway through.
// Index row: DESIGN.md §4 / EXPERIMENTS.md (A1-A2) — expected shape lives there.
#include "bench_common.h"

#include "core/api.h"
#include "explore/walker.h"
#include "graph/algorithms.h"
#include "graph/catalog.h"
#include "graph/generators.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace uesr;

/// Random double-edge swap on a cubic graph (keeps 3-regularity; may
/// create multi-edges, which the walker handles fine).
graph::Graph swap_two_edges(const graph::Graph& g, util::Pcg32& rng) {
  std::vector<std::pair<graph::HalfEdge, graph::HalfEdge>> edges;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v)
    for (graph::Port p = 0; p < g.degree(v); ++p) {
      graph::HalfEdge far = g.rotate(v, p);
      if (graph::HalfEdge{v, p} < far) edges.push_back({{v, p}, far});
    }
  for (int attempt = 0; attempt < 100; ++attempt) {
    auto [a, b] = edges[rng.next_below(static_cast<std::uint32_t>(edges.size()))];
    auto [c, d] = edges[rng.next_below(static_cast<std::uint32_t>(edges.size()))];
    if (a.node == c.node || a.node == d.node || b.node == c.node ||
        b.node == d.node)
      continue;
    // Rewire (a-b),(c-d) -> (a-c),(b-d), keeping the same ports.
    std::vector<std::vector<graph::HalfEdge>> adj(g.num_nodes());
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      adj[v].resize(g.degree(v));
      for (graph::Port p = 0; p < g.degree(v); ++p) adj[v][p] = g.rotate(v, p);
    }
    adj[a.node][a.port] = c;
    adj[c.node][c.port] = a;
    adj[b.node][b.port] = d;
    adj[d.node][d.port] = b;
    return graph::from_rotation(std::move(adj));
  }
  return g;  // give up: unchanged
}

}  // namespace

int main() {
  using namespace uesr;
  bench::banner("A — ablations",
                "sequence length, symbol alphabet, and the static-network "
                "assumption");

  // ---- A1: length coefficient vs soundness.
  {
    util::Table t({"L / n'^2", "connected pairs", "delivered",
                   "unsound failures"});
    for (double c : {0.005, 0.02, 0.05, 0.25, 1.0, 4.0}) {
      int pairs = 0, delivered = 0;
      for (std::uint64_t seed = 0; seed < 6; ++seed) {
        graph::Graph g = graph::connected_gnp(24, 0.12, seed);
        explore::ReducedGraph red = explore::reduce_to_cubic(g);
        std::uint64_t np = red.cubic.num_nodes();
        auto seq = std::make_shared<explore::RandomExplorationSequence>(
            1234, std::max<std::uint64_t>(
                      4, static_cast<std::uint64_t>(c * np * np)),
            static_cast<graph::NodeId>(np));
        core::UesRouter router(red, seq, np + 1);
        util::Pcg32 rng(seed);
        for (int i = 0; i < 10; ++i) {
          graph::NodeId s = rng.next_below(24), d = rng.next_below(24);
          if (s == d) continue;
          ++pairs;
          delivered += router.route(s, d).delivered;
        }
      }
      t.row().cell(c, 3).cell(pairs).cell(delivered).cell(pairs - delivered);
    }
    t.print(std::cout);
    std::cout << "\nbelow the cover threshold the walk misses connected "
                 "targets and the \"failure certificate\" is UNSOUND; by "
                 "L ~ 0.25 n'^2 every pair delivers on these sizes — the "
                 "library default (~24 n'^2 log n') keeps orders of "
                 "magnitude of headroom because soundness is the whole "
                 "point\n\n";
  }

  // ---- A2: alphabet ablation on the cubic catalogue.
  {
    util::Table t({"alphabet", "walks", "covered", "rate"});
    struct Alt {
      std::string name;
      std::vector<explore::Symbol> symbols;
    };
    std::vector<Alt> alts = {{"{0,1,2} (paper)", {0, 1, 2}},
                             {"{0,1}", {0, 1}},
                             {"{1,2} (never bounce)", {1, 2}},
                             {"{1} (constant)", {1}}};
    for (const auto& alt : alts) {
      std::uint64_t walks = 0, covered = 0;
      util::Pcg32 rng(9);
      explore::WalkScratch scratch;
      for (graph::NodeId n : {8u, 10u}) {
        for (const auto& g : graph::connected_cubic_graphs(n, 1)) {
          graph::Graph labeled = g.randomly_relabeled(rng);
          // Map a long pseudorandom index stream into the sub-alphabet.
          std::vector<explore::Symbol> syms(4096);
          util::CounterRng cr(42);
          for (std::size_t i = 0; i < syms.size(); ++i)
            syms[i] = alt.symbols[cr.value_below(
                i, static_cast<std::uint32_t>(alt.symbols.size()))];
          explore::FixedExplorationSequence seq(syms, n, alt.name);
          // Catalogue graphs are connected: every walk needs the whole
          // graph, so reuse one scratch instead of a BFS + allocation per
          // walk (the PR 2 (need, scratch) convention).
          for (graph::NodeId v = 0; v < labeled.num_nodes(); v += 2) {
            ++walks;
            covered += explore::covers_component(
                labeled, {v, 0}, seq, labeled.num_nodes(), scratch);
          }
        }
      }
      t.row().cell(alt.name).cell(walks).cell(covered).cell(
          static_cast<double>(covered) / static_cast<double>(walks), 3);
    }
    t.print(std::cout);
    std::cout << "\nmeasured: long random sequences over any 2-offset "
                 "alphabet still covered these instances (richer symbol "
                 "sets mainly buy speed), while the degenerate constant "
                 "offset strands half the walks — Definition 3's ternary "
                 "alphabet is the safe general choice\n\n";
  }

  // ---- A3: static assumption.
  {
    util::Table t({"topology change", "walks", "backtrack returned",
                   "derailed"});
    for (bool mutate : {false, true}) {
      int walks = 0, returned = 0;
      util::Pcg32 rng(5);
      for (std::uint64_t seed = 0; seed < 40; ++seed) {
        graph::Graph g1 = graph::random_connected_regular(24, 3, seed);
        explore::RandomExplorationSequence seq(seed, 600, 24);
        graph::HalfEdge start{0, 0};
        const std::uint64_t half = 300;
        // Forward: first half on g1, second half on g2.
        graph::Graph g2 = mutate ? swap_two_edges(g1, rng) : g1;
        graph::HalfEdge d = start;
        for (std::uint64_t j = 1; j <= half; ++j)
          d = explore::forward_step(g1, d, seq.symbol(j));
        for (std::uint64_t j = half + 1; j <= 600; ++j)
          d = explore::forward_step(g2, d, seq.symbol(j));
        // Backward entirely on g2 (the network as it is NOW).
        for (std::uint64_t j = 600; j >= 1; --j)
          d = explore::reverse_step(g2, d, seq.symbol(j));
        ++walks;
        returned += (d == start);
      }
      t.row()
          .cell(mutate ? "one edge swap mid-walk" : "none (static)")
          .cell(walks)
          .cell(returned)
          .cell(walks - returned);
    }
    t.print(std::cout);
    std::cout << "\nwith a static network every backtrack returns; a "
                 "single mid-walk rewiring derails most replays — the "
                 "paper's static assumption is load-bearing, and dynamic "
                 "graphs genuinely need different machinery\n";
  }
  return 0;
}
