// E11 (dynamic topology): delivery and certification while the network
// changes — the "ad hoc" of the paper's title made real.
//
// Shape expected: the UES router, restarted per epoch, never contradicts
// ground truth (err == 0 on every row): every attempt ends in a delivery
// or a certified failure that is exact for the topology it completed
// against.  Flooding loses its certificate under churn and starts missing
// pairs (links appear behind the wave); the TTL'd random walk terminates
// on every schedule — including ones that isolate the source outright
// (the livelock fix) — but misses more; greedy forwarding exists only on
// the mobility rows and dies in voids.
//
// Trials fan out over the shared threads knob via
// baselines::churn_experiment, whose cells are bit-identical for any
// --threads value (pinned by the ThreadInvariance churn tests); the `s`
// column is the only thing a bigger machine moves.
// Index row: DESIGN.md §4 / EXPERIMENTS.md (E11) — expected shape lives there.
#include "bench_common.h"

#include <cmath>
#include <memory>
#include <vector>

#include "baselines/churn.h"
#include "graph/churn.h"
#include "graph/generators.h"
#include "graph/geometric.h"
#include "util/rng.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace uesr;
  const unsigned threads = bench::threads_knob(argc, argv);
  bench::banner("E11 / dynamic topology — delivery under churn and mobility",
                "paper §1: ad hoc networks change topology frequently; Route "
                "restarted per epoch still delivers or certifies failure, "
                "exactly, on the topology each attempt completes against");
  bench::report_threads(threads);

  std::vector<std::unique_ptr<graph::Scenario>> scenarios;
  scenarios.push_back(std::make_unique<graph::LinkFlapScenario>(
      graph::connected_gnp(36, 0.14, 19), /*flaps_per_epoch=*/3, 101));
  scenarios.push_back(std::make_unique<graph::LinkFlapScenario>(
      graph::unit_disk_2d(40, 0.24, 23).graph, /*flaps_per_epoch=*/4, 103));
  scenarios.push_back(std::make_unique<graph::NodeChurnScenario>(
      graph::connected_gnp(36, 0.16, 29), /*p_leave=*/0.06, /*p_join=*/0.45,
      107));
  // Harsh churn: sources regularly end up isolated — the schedule the
  // random-walk livelock fix is exercised under.
  scenarios.push_back(std::make_unique<graph::NodeChurnScenario>(
      graph::connected_gnp(30, 0.2, 31), /*p_leave=*/0.3, /*p_join=*/0.5,
      109));
  scenarios.push_back(std::make_unique<graph::WaypointScenario>(
      /*n=*/36, /*dim=*/2, /*radius=*/0.26, /*speed=*/0.05, 113));
  scenarios.push_back(std::make_unique<graph::WaypointScenario>(
      /*n=*/36, /*dim=*/3, /*radius=*/0.38, /*speed=*/0.05, 127));

  util::Table t({"scenario", "pairs", "ues ok", "ues cert-fail", "ues err",
                 "restarts", "rw ok", "flood ok", "gossip ok", "gossip tx",
                 "greedy ok", "s"});
  const int kPairs = 40;
  const std::uint64_t kPeriod = 48;   // transmissions per epoch
  const std::uint64_t kMaxEpochs = 24;
  for (const auto& scenario : scenarios) {
    const auto n = static_cast<double>(scenario->num_nodes());
    const auto ttl = static_cast<std::uint64_t>(10.0 * std::pow(n, 1.5));
    bench::Timer timer;
    const baselines::ChurnCell cell = baselines::churn_experiment(
        *scenario, kPairs, kPeriod, kMaxEpochs, ttl, /*seed=*/123, threads);
    t.row()
        .cell(scenario->name())
        .cell(cell.pairs)
        .cell(cell.ues_delivered)
        .cell(cell.ues_certified)
        .cell(cell.ues_errors)
        .cell(cell.ues_restarts)
        .cell(cell.rw_delivered)
        .cell(cell.flood_delivered)
        .cell(cell.gossip_delivered)
        .cell(cell.gossip_transmissions)
        .cell(cell.has_greedy ? std::to_string(cell.greedy_delivered)
                              : std::string("n/a"))
        .cell(timer.seconds(), 3);
  }
  t.print(std::cout);
  std::cout << "\nues ok + ues cert-fail == pairs and ues err == 0 on every "
               "row: each attempt ends in delivery or an epoch-exact "
               "certificate; every baseline terminated on every schedule\n";

  // Gossip percolation under churn: delivery vs loss for several gossip p.
  // The effective branching factor scales with p * (1 - loss), so each
  // column cliffs once loss crosses its percolation threshold — the knee
  // moves right as p grows (more redundancy buys more loss armour).
  std::cout << "\n### gossip percolation threshold in loss "
               "(NodeChurnScenario n=36)\n\n";
  const auto& perc_scenario = *scenarios[2];
  const baselines::ChurnRouter router(perc_scenario, kPeriod, kMaxEpochs);
  const std::vector<double> kLoss = {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.65,
                                     0.8};
  const std::vector<double> kGossipP = {0.4, 0.65, 0.9, 1.0};
  util::Table perc({"loss", "p=0.4 ok", "p=0.65 ok", "p=0.9 ok", "p=1.0 ok",
                    "pairs", "s"});
  const int kPercPairs = 30;
  util::Pcg32 pair_rng(177);
  std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs(kPercPairs);
  for (auto& [s, u] : pairs) {
    s = pair_rng.next_below(perc_scenario.num_nodes());
    u = pair_rng.next_below(perc_scenario.num_nodes());
  }
  for (double loss : kLoss) {
    bench::Timer timer;
    perc.row().cell(loss, 2);
    for (double p : kGossipP) {
      int ok = 0;
      for (int i = 0; i < kPercPairs; ++i)
        ok += router
                  .route_gossip(pairs[static_cast<std::size_t>(i)].first,
                                pairs[static_cast<std::size_t>(i)].second,
                                loss, p, util::counter_hash(177, i))
                  .delivered;
      perc.cell(ok);
    }
    perc.cell(kPercPairs).cell(timer.seconds(), 3);
  }
  perc.print(std::cout);
  std::cout << "\neach p column holds its delivery plateau until loss "
               "crosses its percolation knee, then collapses — redundancy "
               "(higher p) moves the knee right but never restores a "
               "certificate\n";
  return 0;
}
